package online

import (
	"context"
	"fmt"
	"sort"
	"time"

	"reco/internal/algo"
	"reco/internal/online/admission"
)

// EDF serves one pending coflow at a time, earliest deadline first —
// the classic companion to admission control: once the admitted set is
// EDF-feasible per port, serving in deadline order is the policy that
// meets the most deadlines. Coflows without deadlines queue behind every
// deadline-bearing coflow; ties break by smaller bottleneck, then index.
type EDF struct{}

// Name implements Policy.
func (EDF) Name() string { return "edf-" + algo.NameRecoSin }

// Pick implements Policy.
func (EDF) Pick(pending []int, arrivals []Arrival, _ int64) []int {
	best := pending[0]
	for _, k := range pending[1:] {
		if edfLess(arrivals, k, best) {
			best = k
		}
	}
	return []int{best}
}

func edfLess(arrivals []Arrival, a, b int) bool {
	da, db := arrivals[a].Deadline, arrivals[b].Deadline
	if da <= 0 {
		da = admission.NoDeadline
	}
	if db <= 0 {
		db = admission.NoDeadline
	}
	if da != db {
		return da < db
	}
	ra, rb := arrivals[a].Demand.MaxRowColSum(), arrivals[b].Demand.MaxRowColSum()
	if ra != rb {
		return ra < rb
	}
	return a < b
}

// Admitter decides, each time the controller dispatches, which pending
// coflows stay in the system and which are rejected for good.
type Admitter interface {
	// Name identifies the admitter in reports.
	Name() string
	// Admit partitions the pending indices into kept and shed sets. Shed
	// coflows are rejected permanently: they never re-enter the pending
	// set and record no CCT.
	Admit(pending []int, arrivals []Arrival, now int64) (keep, shed []int, err error)
}

// AdmitAll is the no-op admitter: everything is kept. SimulateAdmit with
// AdmitAll reproduces Simulate exactly.
type AdmitAll struct{}

// Name implements Admitter.
func (AdmitAll) Name() string { return "admit-all" }

// Admit implements Admitter.
func (AdmitAll) Admit(pending []int, _ []Arrival, _ int64) ([]int, []int, error) {
	return pending, nil, nil
}

// GreedyAdmit keeps the greedy weighted packing of the pending set under
// the per-port EDF deadline bound.
type GreedyAdmit struct {
	// Opts tunes the feasibility test; the zero value uses bandwidth 1.
	Opts admission.Options
}

// Name implements Admitter.
func (GreedyAdmit) Name() string { return "greedy" }

// Admit implements Admitter.
func (g GreedyAdmit) Admit(pending []int, arrivals []Arrival, now int64) ([]int, []int, error) {
	cands := candidates(pending, arrivals, now)
	d, err := admission.Greedy(cands, g.Opts)
	if err != nil {
		return nil, nil, fmt.Errorf("online: %w", err)
	}
	return split(pending, d)
}

// LPAdmit keeps the LP-selected maximal-weight admissible subset of the
// pending set, degrading to the greedy packing on LP timeout or failure.
type LPAdmit struct {
	// Opts tunes the LP; the zero value uses bandwidth 1 and the package
	// defaults for LP size caps.
	Opts admission.Options
	// Timeout bounds each LP solve. Zero means 50ms.
	Timeout time.Duration
}

// Name implements Admitter.
func (LPAdmit) Name() string { return "lp" }

// Admit implements Admitter.
func (l LPAdmit) Admit(pending []int, arrivals []Arrival, now int64) ([]int, []int, error) {
	timeout := l.Timeout
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	d, err := admission.Admit(ctx, candidates(pending, arrivals, now), l.Opts)
	if err != nil {
		return nil, nil, fmt.Errorf("online: %w", err)
	}
	return split(pending, d)
}

// candidates converts pending arrivals into admission candidates with
// remaining (relative) deadlines as of now.
func candidates(pending []int, arrivals []Arrival, now int64) []admission.Candidate {
	cands := make([]admission.Candidate, len(pending))
	for i, k := range pending {
		rem := int64(admission.NoDeadline)
		if d := arrivals[k].Deadline; d > 0 {
			rem = d - now
		}
		cands[i] = admission.NewCandidate(arrivals[k].Demand, rem, arrivals[k].Weight)
	}
	return cands
}

func split(pending []int, d *admission.Decision) ([]int, []int, error) {
	keep := make([]int, 0, len(d.Admitted))
	for _, i := range d.Admitted {
		keep = append(keep, pending[i])
	}
	shed := make([]int, 0, len(d.Rejected))
	for _, i := range d.Rejected {
		shed = append(shed, pending[i])
	}
	return keep, shed, nil
}

// AdmitResult reports an admission-controlled online simulation. The
// embedded Result covers served coflows only: a rejected coflow records a
// zero CCT and Rejected[k] == true.
type AdmitResult struct {
	Result
	// Admitter is the name of the admission policy.
	Admitter string
	// Rejected[k] reports whether arrival k was shed by admission.
	Rejected []bool
	// Missed[k] reports whether arrival k was served but finished after
	// its deadline. Rejected or deadline-free coflows never miss.
	Missed []bool
	// AdmittedWeight and TotalWeight sum effective weights (zero weight
	// counts as 1) over served coflows and all arrivals respectively.
	AdmittedWeight, TotalWeight float64

	hasDeadline []bool
}

// MissRate returns the fraction of served deadline-bearing coflows that
// finished late. It is 0 when nothing with a deadline was served.
func (r *AdmitResult) MissRate() float64 {
	served, missed := 0, 0
	for k := range r.Missed {
		if r.Rejected[k] || !r.hasDeadline[k] {
			continue
		}
		served++
		if r.Missed[k] {
			missed++
		}
	}
	if served == 0 {
		return 0
	}
	return float64(missed) / float64(served)
}

// SimulateAdmit runs the same event-driven controller as Simulate with an
// admission step in front of the policy: every time the switch frees up,
// the admitter partitions the pending set, shed coflows leave permanently,
// and the policy picks from the kept set. AdmitAll reproduces Simulate's
// Result exactly.
func SimulateAdmit(arrivals []Arrival, adm Admitter, pol Policy, delta, c int64) (*AdmitResult, error) {
	if adm == nil {
		return nil, fmt.Errorf("%w: nil admitter", ErrBadInput)
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("%w: no arrivals", ErrBadInput)
	}
	if pol == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrBadInput)
	}
	n := arrivals[0].Demand.N()
	for k, a := range arrivals {
		if a.Demand == nil || a.Demand.N() != n {
			return nil, fmt.Errorf("%w: arrival %d has bad demand", ErrBadInput, k)
		}
		if a.At < 0 {
			return nil, fmt.Errorf("%w: arrival %d at negative time %d", ErrBadInput, k, a.At)
		}
	}

	order := make([]int, len(arrivals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return arrivals[order[a]].At < arrivals[order[b]].At })

	res := &AdmitResult{
		Result:      Result{Policy: pol.Name(), CCTs: make([]int64, len(arrivals))},
		Admitter:    adm.Name(),
		Rejected:    make([]bool, len(arrivals)),
		Missed:      make([]bool, len(arrivals)),
		hasDeadline: make([]bool, len(arrivals)),
	}
	for k, a := range arrivals {
		res.hasDeadline[k] = a.Deadline > 0
		w := a.Weight
		if w == 0 {
			w = 1
		}
		res.TotalWeight += w
	}
	decided := make([]bool, len(arrivals))
	nextArrival := 0
	var now int64
	remaining := len(arrivals)

	for remaining > 0 {
		var pending []int
		for nextArrival < len(order) && arrivals[order[nextArrival]].At <= now {
			nextArrival++
		}
		for _, k := range order[:nextArrival] {
			if !decided[k] {
				pending = append(pending, k)
			}
		}
		if len(pending) == 0 {
			now = arrivals[order[nextArrival]].At
			continue
		}

		keep, shed, err := adm.Admit(pending, arrivals, now)
		if err != nil {
			return nil, err
		}
		for _, k := range shed {
			res.Rejected[k] = true
			decided[k] = true
		}
		remaining -= len(shed)
		if len(keep) == 0 {
			continue
		}

		chosen := pol.Pick(keep, arrivals, now)
		if err := checkChoice(chosen, keep); err != nil {
			return nil, err
		}
		if err := serveUnit(&res.Result, arrivals, chosen, &now, delta, c); err != nil {
			return nil, err
		}
		for _, k := range chosen {
			decided[k] = true
			finish := arrivals[k].At + res.CCTs[k]
			if arrivals[k].Deadline > 0 && finish > arrivals[k].Deadline {
				res.Missed[k] = true
			}
			w := arrivals[k].Weight
			if w == 0 {
				w = 1
			}
			res.AdmittedWeight += w
		}
		remaining -= len(chosen)
		res.ServiceUnits++
	}
	res.Makespan = now
	return res, nil
}
