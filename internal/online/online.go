// Package online extends the paper's offline model with coflow arrivals —
// the future direction its conclusion names ("derive online coflow
// scheduling schemes for OCS-based networks"). Coflows become known only
// when they arrive; an event-driven controller decides, whenever the switch
// frees up, which pending coflows to serve next and schedules them with the
// repository's offline machinery (Reco-Sin for one coflow, the Reco-Mul
// pipeline for a batch).
package online

import (
	"errors"
	"fmt"
	"sort"

	"reco/internal/algo"
	"reco/internal/core"
	"reco/internal/matrix"
	"reco/internal/ocs"
)

// ErrBadInput reports an unusable arrival sequence or policy decision.
var ErrBadInput = errors.New("online: invalid input")

// Arrival is one coflow arriving at time At (ticks). Deadline, when
// positive, is the absolute tick by which the coflow should complete;
// zero means no deadline. Only EDF and the admission controllers look at
// it — the original policies ignore deadlines entirely.
type Arrival struct {
	Demand   *matrix.Matrix
	At       int64
	Weight   float64
	Deadline int64
}

// Policy decides which pending coflows the switch serves next.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns a non-empty subset of the pending indices to serve as
	// the next service unit. Indices refer to the arrivals slice.
	Pick(pending []int, arrivals []Arrival, now int64) []int
}

// FIFO serves pending coflows one at a time in arrival order.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo-" + algo.NameRecoSin }

// Pick implements Policy.
func (FIFO) Pick(pending []int, arrivals []Arrival, _ int64) []int {
	best := pending[0]
	for _, k := range pending[1:] {
		if arrivals[k].At < arrivals[best].At || (arrivals[k].At == arrivals[best].At && k < best) {
			best = k
		}
	}
	return []int{best}
}

// SEBF serves one pending coflow at a time, smallest effective bottleneck
// first — the online analogue of Varys' heuristic.
type SEBF struct{}

// Name implements Policy.
func (SEBF) Name() string { return "sebf-" + algo.NameRecoSin }

// Pick implements Policy.
func (SEBF) Pick(pending []int, arrivals []Arrival, _ int64) []int {
	best := pending[0]
	bestRho := arrivals[best].Demand.MaxRowColSum()
	for _, k := range pending[1:] {
		rho := arrivals[k].Demand.MaxRowColSum()
		if rho < bestRho || (rho == bestRho && k < best) {
			best = k
			bestRho = rho
		}
	}
	return []int{best}
}

// Batch serves all pending coflows together through the Reco-Mul pipeline —
// amortizing reconfigurations across the batch at the cost of head-of-line
// batching delay.
type Batch struct{}

// Name implements Policy.
func (Batch) Name() string { return "batch-" + algo.NameRecoMul }

// Pick implements Policy.
func (Batch) Pick(pending []int, _ []Arrival, _ int64) []int {
	out := make([]int, len(pending))
	copy(out, pending)
	sort.Ints(out)
	return out
}

// DisjointBatch serves the smallest-bottleneck pending coflow together with
// every pending coflow that is port-disjoint from the chosen set: the
// co-scheduled coflows share the fabric (and the Reco-Mul alignment)
// without delaying each other, while contenders wait for the next unit.
type DisjointBatch struct{}

// Name implements Policy.
func (DisjointBatch) Name() string { return "disjoint-" + algo.NameRecoMul }

// Pick implements Policy.
func (DisjointBatch) Pick(pending []int, arrivals []Arrival, _ int64) []int {
	// Seed with the smallest bottleneck (SEBF), then grow greedily in
	// bottleneck order with port-disjoint coflows.
	order := make([]int, len(pending))
	copy(order, pending)
	sort.Slice(order, func(a, b int) bool {
		ra := arrivals[order[a]].Demand.MaxRowColSum()
		rb := arrivals[order[b]].Demand.MaxRowColSum()
		if ra != rb {
			return ra < rb
		}
		return order[a] < order[b]
	})
	n := arrivals[order[0]].Demand.N()
	usedIn := make([]bool, n)
	usedOut := make([]bool, n)
	var out []int
	for _, k := range order {
		d := arrivals[k].Demand
		conflict := false
	scan:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.At(i, j) > 0 && (usedIn[i] || usedOut[j]) {
					conflict = true
					break scan
				}
			}
		}
		if conflict && len(out) > 0 {
			continue
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.At(i, j) > 0 {
					usedIn[i] = true
					usedOut[j] = true
				}
			}
		}
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Result reports an online simulation.
type Result struct {
	// Policy is the name of the policy that produced the result.
	Policy string
	// CCTs[k] is arrival k's completion time minus its arrival time.
	CCTs []int64
	// Reconfigs is the total number of reconfigurations across all service
	// units.
	Reconfigs int
	// Makespan is the time the last coflow completes.
	Makespan int64
	// ServiceUnits is how many times the controller dispatched work.
	ServiceUnits int
}

// Simulate runs the event-driven controller: the switch serves one unit at
// a time; when it frees up (or when the first coflow arrives to an idle
// switch), the policy picks the next unit from the pending set.
func Simulate(arrivals []Arrival, pol Policy, delta, c int64) (*Result, error) {
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("%w: no arrivals", ErrBadInput)
	}
	if pol == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrBadInput)
	}
	n := arrivals[0].Demand.N()
	for k, a := range arrivals {
		if a.Demand == nil || a.Demand.N() != n {
			return nil, fmt.Errorf("%w: arrival %d has bad demand", ErrBadInput, k)
		}
		if a.At < 0 {
			return nil, fmt.Errorf("%w: arrival %d at negative time %d", ErrBadInput, k, a.At)
		}
	}

	// Arrival order for advancing the clock.
	order := make([]int, len(arrivals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return arrivals[order[a]].At < arrivals[order[b]].At })

	res := &Result{Policy: pol.Name(), CCTs: make([]int64, len(arrivals))}
	served := make([]bool, len(arrivals))
	nextArrival := 0
	var now int64
	remaining := len(arrivals)

	for remaining > 0 {
		// Collect pending coflows; if none, jump to the next arrival.
		var pending []int
		for nextArrival < len(order) && arrivals[order[nextArrival]].At <= now {
			nextArrival++
		}
		for _, k := range order[:nextArrival] {
			if !served[k] {
				pending = append(pending, k)
			}
		}
		if len(pending) == 0 {
			now = arrivals[order[nextArrival]].At
			continue
		}

		chosen := pol.Pick(pending, arrivals, now)
		if err := checkChoice(chosen, pending); err != nil {
			return nil, err
		}
		if err := serveUnit(res, arrivals, chosen, &now, delta, c); err != nil {
			return nil, err
		}
		for _, k := range chosen {
			served[k] = true
		}
		remaining -= len(chosen)
		res.ServiceUnits++
	}
	res.Makespan = now
	return res, nil
}

func checkChoice(chosen, pending []int) error {
	if len(chosen) == 0 {
		return fmt.Errorf("%w: policy picked nothing", ErrBadInput)
	}
	ok := make(map[int]bool, len(pending))
	for _, k := range pending {
		ok[k] = true
	}
	seen := make(map[int]bool, len(chosen))
	for _, k := range chosen {
		if !ok[k] || seen[k] {
			return fmt.Errorf("%w: policy picked invalid index %d", ErrBadInput, k)
		}
		seen[k] = true
	}
	return nil
}

// serveUnit schedules the chosen coflows starting at *now and advances the
// clock to the unit's completion.
func serveUnit(res *Result, arrivals []Arrival, chosen []int, now *int64, delta, c int64) error {
	if len(chosen) == 1 {
		k := chosen[0]
		cs, err := core.RecoSin(arrivals[k].Demand, delta)
		if err != nil {
			return fmt.Errorf("online: %w", err)
		}
		exec, err := ocs.ExecAllStop(arrivals[k].Demand, cs, delta)
		if err != nil {
			return fmt.Errorf("online: %w", err)
		}
		*now += exec.CCT
		res.CCTs[k] = *now - arrivals[k].At
		res.Reconfigs += exec.Reconfigs
		return nil
	}

	ds := make([]*matrix.Matrix, len(chosen))
	w := make([]float64, len(chosen))
	for i, k := range chosen {
		ds[i] = arrivals[k].Demand
		w[i] = arrivals[k].Weight
	}
	mul, err := core.ScheduleMul(ds, w, delta, c)
	if err != nil {
		return fmt.Errorf("online: %w", err)
	}
	var unitEnd int64
	for i, k := range chosen {
		finish := *now + mul.CCTs[i]
		res.CCTs[k] = finish - arrivals[k].At
		if finish > unitEnd {
			unitEnd = finish
		}
	}
	*now = unitEnd
	res.Reconfigs += mul.Reconfigs
	return nil
}
