package online

import (
	"errors"
	"math/rand"
	"testing"

	"reco/internal/matrix"
	"reco/internal/workload"
)

func mustMatrix(t *testing.T, rows [][]int64) *matrix.Matrix {
	t.Helper()
	m, err := matrix.FromRows(rows)
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	return m
}

func TestSimulateValidation(t *testing.T) {
	d := mustMatrix(t, [][]int64{{5}})
	if _, err := Simulate(nil, FIFO{}, 10, 4); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty arrivals: %v", err)
	}
	if _, err := Simulate([]Arrival{{Demand: d}}, nil, 10, 4); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil policy: %v", err)
	}
	if _, err := Simulate([]Arrival{{Demand: d, At: -1}}, FIFO{}, 10, 4); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative arrival: %v", err)
	}
	d2 := mustMatrix(t, [][]int64{{1, 0}, {0, 1}})
	if _, err := Simulate([]Arrival{{Demand: d}, {Demand: d2}}, FIFO{}, 10, 4); !errors.Is(err, ErrBadInput) {
		t.Errorf("dimension mismatch: %v", err)
	}
}

func TestSimulateSingleArrival(t *testing.T) {
	d := mustMatrix(t, [][]int64{{40}})
	res, err := Simulate([]Arrival{{Demand: d, At: 7, Weight: 1}}, FIFO{}, 10, 4)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	// Arrives at 7, served immediately: reconfig 10 + transfer 40.
	if res.CCTs[0] != 50 {
		t.Errorf("CCT = %d, want 50", res.CCTs[0])
	}
	if res.Makespan != 57 {
		t.Errorf("Makespan = %d, want 57", res.Makespan)
	}
	if res.ServiceUnits != 1 {
		t.Errorf("ServiceUnits = %d, want 1", res.ServiceUnits)
	}
}

func TestSimulateIdleGap(t *testing.T) {
	// Second coflow arrives long after the first completes: the clock must
	// jump over the idle period; its CCT excludes the idle time.
	a := mustMatrix(t, [][]int64{{40}})
	b := mustMatrix(t, [][]int64{{30}})
	res, err := Simulate([]Arrival{
		{Demand: a, At: 0, Weight: 1},
		{Demand: b, At: 500, Weight: 1},
	}, FIFO{}, 10, 4)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.CCTs[0] != 50 {
		t.Errorf("CCT[0] = %d, want 50", res.CCTs[0])
	}
	if res.CCTs[1] != 40 {
		t.Errorf("CCT[1] = %d, want 40 (10 reconfig + 30)", res.CCTs[1])
	}
	if res.Makespan != 540 {
		t.Errorf("Makespan = %d, want 540", res.Makespan)
	}
}

func TestFIFOOrder(t *testing.T) {
	// Both pending when the switch frees: FIFO must serve the earlier
	// arrival first even though it is bigger.
	big := mustMatrix(t, [][]int64{{100}})
	small := mustMatrix(t, [][]int64{{10}})
	res, err := Simulate([]Arrival{
		{Demand: big, At: 1, Weight: 1},
		{Demand: small, At: 2, Weight: 1},
	}, FIFO{}, 0, 4)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.CCTs[0] > res.CCTs[1] {
		t.Errorf("FIFO served out of order: CCTs %v", res.CCTs)
	}
}

func TestSEBFPrefersSmall(t *testing.T) {
	// Both arrive at 0; SEBF must finish the small one first.
	big := mustMatrix(t, [][]int64{{100}})
	small := mustMatrix(t, [][]int64{{10}})
	res, err := Simulate([]Arrival{
		{Demand: big, At: 0, Weight: 1},
		{Demand: small, At: 0, Weight: 1},
	}, SEBF{}, 0, 4)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.CCTs[1] >= res.CCTs[0] {
		t.Errorf("SEBF served the elephant first: CCTs %v", res.CCTs)
	}
}

func TestBatchServesAllPending(t *testing.T) {
	a := mustMatrix(t, [][]int64{{400, 0}, {0, 0}})
	b := mustMatrix(t, [][]int64{{0, 0}, {0, 400}})
	res, err := Simulate([]Arrival{
		{Demand: a, At: 0, Weight: 1},
		{Demand: b, At: 0, Weight: 1},
	}, Batch{}, 100, 4)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.ServiceUnits != 1 {
		t.Errorf("ServiceUnits = %d, want 1 (one batch)", res.ServiceUnits)
	}
	// Disjoint ports: the batch runs them concurrently, so both CCTs are far
	// below the serial 2×(100+400).
	for k, c := range res.CCTs {
		if c >= 900 {
			t.Errorf("CCT[%d] = %d, batching failed to parallelize", k, c)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{FIFO{}, SEBF{}, Batch{}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

type badPolicy struct{ pick []int }

func (badPolicy) Name() string                         { return "bad" }
func (p badPolicy) Pick([]int, []Arrival, int64) []int { return p.pick }

func TestSimulateRejectsBadPolicy(t *testing.T) {
	d := mustMatrix(t, [][]int64{{5}})
	arrivals := []Arrival{{Demand: d, Weight: 1}}
	for _, pick := range [][]int{nil, {7}, {0, 0}} {
		if _, err := Simulate(arrivals, badPolicy{pick}, 10, 4); !errors.Is(err, ErrBadInput) {
			t.Errorf("pick %v accepted: %v", pick, err)
		}
	}
}

func TestSimulateRandomWorkload(t *testing.T) {
	coflows, err := workload.Generate(workload.GenConfig{
		N: 16, NumCoflows: 12, Seed: 9, MinDemand: 400, MeanDemand: 400,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	arrivals := make([]Arrival, len(coflows))
	var at int64
	for i, c := range coflows {
		arrivals[i] = Arrival{Demand: c.Demand, At: at, Weight: 1}
		at += rng.Int63n(2000)
	}
	for _, p := range []Policy{FIFO{}, SEBF{}, Batch{}} {
		res, err := Simulate(arrivals, p, 100, 4)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Policy != p.Name() {
			t.Errorf("result policy %q, want %q", res.Policy, p.Name())
		}
		for k, c := range res.CCTs {
			if c <= 0 {
				t.Errorf("%s: CCT[%d] = %d", p.Name(), k, c)
			}
		}
		if res.Reconfigs <= 0 || res.Makespan <= 0 {
			t.Errorf("%s: degenerate result %+v", p.Name(), res)
		}
	}
}

func TestDisjointBatchCoSchedulesDisjointCoflows(t *testing.T) {
	// Two port-disjoint coflows and one conflicting: the first unit must
	// contain exactly the two disjoint ones.
	a := mustMatrix(t, [][]int64{
		{400, 0, 0},
		{0, 0, 0},
		{0, 0, 0},
	})
	b := mustMatrix(t, [][]int64{
		{0, 0, 0},
		{0, 400, 0},
		{0, 0, 0},
	})
	conflict := mustMatrix(t, [][]int64{
		{400, 400, 0},
		{0, 0, 0},
		{0, 0, 0},
	})
	arrivals := []Arrival{
		{Demand: conflict, At: 0, Weight: 1},
		{Demand: a, At: 0, Weight: 1},
		{Demand: b, At: 0, Weight: 1},
	}
	picked := DisjointBatch{}.Pick([]int{0, 1, 2}, arrivals, 0)
	if len(picked) != 2 || picked[0] != 1 || picked[1] != 2 {
		t.Fatalf("Pick = %v, want [1 2] (the disjoint pair)", picked)
	}
	res, err := Simulate(arrivals, DisjointBatch{}, 100, 4)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.ServiceUnits != 2 {
		t.Errorf("ServiceUnits = %d, want 2", res.ServiceUnits)
	}
}

func TestDisjointBatchSeedsWithSmallestBottleneck(t *testing.T) {
	big := mustMatrix(t, [][]int64{{4000}})
	small := mustMatrix(t, [][]int64{{400}})
	arrivals := []Arrival{
		{Demand: big, At: 0, Weight: 1},
		{Demand: small, At: 0, Weight: 1},
	}
	picked := DisjointBatch{}.Pick([]int{0, 1}, arrivals, 0)
	if len(picked) != 1 || picked[0] != 1 {
		t.Fatalf("Pick = %v, want [1] (smallest bottleneck seeds)", picked)
	}
}
