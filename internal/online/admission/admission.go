// Package admission decides which deadline-bearing coflows a scheduler
// should accept before it decides how to serve them — the Sincronia-style
// online admission step (SNIPPETS.md #1) generalized to per-candidate
// deadlines. Each candidate exposes its per-port loads, a remaining
// deadline in ticks, and a weight; Admit solves a fractional LP that
// maximizes admitted weight subject to every port being able to drain the
// admitted load within its deadlines, rounds the solution, repairs it to
// integral feasibility, and falls back to (and never does worse than) a
// greedy weighted packing when the LP is infeasible, oversized, or runs out
// of time.
//
// The feasibility condition is the per-port EDF (earliest-deadline-first)
// bound for a fluid server of rate Bandwidth: for every port p and every
// deadline d, the total load on p of admitted candidates with deadline at
// most d must be at most Bandwidth·d. It ignores reconfiguration delay and
// circuit integrality, so it is a necessary condition — optimistic by δ per
// establishment — which is exactly the role it plays in Sincronia: a cheap
// screen that sheds work the fabric provably cannot finish in time.
package admission

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"reco/internal/lp"
	"reco/internal/matrix"
	"reco/internal/obs"
)

// NoDeadline marks a candidate with no deadline: it joins no port
// constraint and is always admissible.
const NoDeadline = int64(math.MaxInt64)

// ErrBadInput reports an unusable candidate set.
var ErrBadInput = errors.New("admission: invalid input")

// Candidate is one coflow (or request) competing for admission.
type Candidate struct {
	// In[p] / Out[p] are the candidate's ingress/egress loads per port in
	// ticks of transmission — typically the demand matrix's row and column
	// sums. The two slices may have different lengths across candidates;
	// missing ports carry zero load.
	In, Out []int64
	// Deadline is the remaining time budget in ticks. NoDeadline means
	// unconstrained; a non-positive deadline with positive load is already
	// hopeless and is always rejected.
	Deadline int64
	// Weight is the value of admitting this candidate. Zero means 1;
	// negative is invalid.
	Weight float64
}

// NewCandidate builds a Candidate from a demand matrix.
func NewCandidate(d *matrix.Matrix, deadline int64, weight float64) Candidate {
	return Candidate{In: d.RowSums(), Out: d.ColSums(), Deadline: deadline, Weight: weight}
}

// load returns the candidate's total demand.
func (c Candidate) load() int64 {
	var t int64
	for _, v := range c.In {
		t += v
	}
	return t
}

// weight returns the effective weight (zero defaults to 1).
func (c Candidate) weight() float64 {
	if c.Weight == 0 {
		return 1
	}
	return c.Weight
}

// Options tunes a Decision. The zero value is ready to use.
type Options struct {
	// Bandwidth is each port's drain rate in ticks of data per tick of
	// time. Zero means 1 — the repository's convention that demand is
	// expressed in ticks of transmission time.
	Bandwidth float64
	// MaxLPCandidates bounds the LP's variable count; larger candidate
	// sets go straight to the greedy packing. Zero means 256.
	MaxLPCandidates int
	// MaxDeadlineBuckets bounds the number of distinct deadlines the LP
	// constrains (each distinct deadline adds up to 2·ports rows). Beyond
	// it, deadlines are conservatively rounded down onto that many bucket
	// boundaries, which keeps the LP small and only ever tightens the
	// constraints. Zero means 8.
	MaxDeadlineBuckets int
}

func (o Options) withDefaults() Options {
	if o.Bandwidth <= 0 {
		o.Bandwidth = 1
	}
	if o.MaxLPCandidates <= 0 {
		o.MaxLPCandidates = 256
	}
	if o.MaxDeadlineBuckets <= 0 {
		o.MaxDeadlineBuckets = 8
	}
	return o
}

// Decision is the accept/reject partition of a candidate set.
type Decision struct {
	// Admitted and Rejected are sorted candidate indices; together they
	// cover the input exactly.
	Admitted, Rejected []int
	// AdmittedWeight and TotalWeight are the effective weights of the
	// admitted set and the whole input.
	AdmittedWeight, TotalWeight float64
	// Source reports which construction produced the admitted set: "lp"
	// (the rounded and repaired LP solution) or "greedy" (the weighted
	// packing — either the LP fell back, or the greedy set was heavier).
	Source string
	// LPObjective is the fractional optimum's admitted weight — an upper
	// bound on any integral admission — when the LP solved; NaN otherwise.
	LPObjective float64
}

// IsAdmitted reports whether candidate i is in the admitted set.
func (d *Decision) IsAdmitted(i int) bool {
	j := sort.SearchInts(d.Admitted, i)
	return j < len(d.Admitted) && d.Admitted[j] == i
}

// Admit partitions cands into admitted and rejected candidates, maximizing
// admitted weight under the per-port deadline constraints. It solves the
// fractional LP under ctx (admission callers typically pass a short
// timeout), rounds variables at 1/2, repairs the rounded set to integral
// feasibility by shedding in ShedOrder, and compares against the greedy
// packing — the returned set is never lighter than greedy's. Any LP
// failure (cancellation, iteration limit, oversized input) degrades to the
// greedy result alone.
func Admit(ctx context.Context, cands []Candidate, opts Options) (*Decision, error) {
	opts = opts.withDefaults()
	if err := validate(cands); err != nil {
		return nil, err
	}
	start := time.Now()
	defer func() {
		obs.Current().ObserveDuration("admission_decision_seconds", time.Since(start))
	}()

	greedy := greedySet(cands, opts)
	best, source := greedy, "greedy"
	lpObj := math.NaN()
	if len(cands) <= opts.MaxLPCandidates {
		lpSet, obj, err := lpSet(ctx, cands, opts)
		if err != nil {
			obs.Current().Inc("admission_lp_fallback_total")
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// The caller's budget expired: greedy is the decision.
				err = nil
			}
			if err != nil && !errors.Is(err, lp.ErrIterationLimit) && !errors.Is(err, lp.ErrInfeasible) {
				return nil, fmt.Errorf("admission: %w", err)
			}
		} else {
			lpObj = obj
			if setWeight(cands, lpSet) >= setWeight(cands, greedy) {
				best, source = lpSet, "lp"
			}
		}
	} else {
		obs.Current().Inc("admission_lp_fallback_total")
	}

	d := newDecision(cands, best, source)
	d.LPObjective = lpObj
	obs.Current().Inc(obs.L("admission_decisions_total", "source", source))
	obs.Current().Count("admission_candidates_admitted_total", int64(len(d.Admitted)))
	obs.Current().Count("admission_candidates_rejected_total", int64(len(d.Rejected)))
	return d, nil
}

// Greedy is the weighted packing alone: candidates are considered in
// admission priority order — weight descending, then tightest deadline
// first — and admitted whenever the set stays feasible. It is the
// deterministic fallback Admit degrades to and is exported for callers
// (and experiments) that want it explicitly.
func Greedy(cands []Candidate, opts Options) (*Decision, error) {
	opts = opts.withDefaults()
	if err := validate(cands); err != nil {
		return nil, err
	}
	d := newDecision(cands, greedySet(cands, opts), "greedy")
	d.LPObjective = math.NaN()
	return d, nil
}

func validate(cands []Candidate) error {
	if len(cands) == 0 {
		return fmt.Errorf("%w: no candidates", ErrBadInput)
	}
	for i, c := range cands {
		if c.Weight < 0 {
			return fmt.Errorf("%w: candidate %d has negative weight", ErrBadInput, i)
		}
		for _, v := range c.In {
			if v < 0 {
				return fmt.Errorf("%w: candidate %d has negative ingress load", ErrBadInput, i)
			}
		}
		for _, v := range c.Out {
			if v < 0 {
				return fmt.Errorf("%w: candidate %d has negative egress load", ErrBadInput, i)
			}
		}
	}
	return nil
}

func newDecision(cands []Candidate, admitted []int, source string) *Decision {
	in := make([]bool, len(cands))
	for _, i := range admitted {
		in[i] = true
	}
	d := &Decision{
		Admitted: append([]int(nil), admitted...),
		Source:   source,
	}
	sort.Ints(d.Admitted)
	for i, c := range cands {
		d.TotalWeight += c.weight()
		if in[i] {
			d.AdmittedWeight += c.weight()
		} else {
			d.Rejected = append(d.Rejected, i)
		}
	}
	return d
}

func setWeight(cands []Candidate, set []int) float64 {
	var w float64
	for _, i := range set {
		w += cands[i].weight()
	}
	return w
}

// admissible reports whether candidate i can ever be admitted on its own:
// hopeless candidates (expired deadline with positive load, or a deadline
// too short for their own load) are screened out before any packing.
func admissible(c Candidate, bw float64) bool {
	if c.Deadline == NoDeadline {
		return true
	}
	if c.Deadline <= 0 {
		return c.load() == 0
	}
	budget := bw * float64(c.Deadline)
	for _, v := range c.In {
		if float64(v) > budget {
			return false
		}
	}
	for _, v := range c.Out {
		if float64(v) > budget {
			return false
		}
	}
	return true
}

// Feasible reports whether the candidate subset passes the per-port EDF
// bound: for every port and every deadline d among the set, the load of
// set members with deadline ≤ d is at most bandwidth·d (bandwidth ≤ 0
// means 1). Candidates with NoDeadline never constrain.
func Feasible(cands []Candidate, set []int, bandwidth float64) bool {
	if bandwidth <= 0 {
		bandwidth = 1
	}
	type member struct {
		deadline int64
		c        *Candidate
	}
	members := make([]member, 0, len(set))
	for _, i := range set {
		c := &cands[i]
		if c.Deadline == NoDeadline {
			continue
		}
		if c.Deadline <= 0 && c.load() > 0 {
			return false
		}
		members = append(members, member{c.Deadline, c})
	}
	if len(members) == 0 {
		return true
	}
	sort.Slice(members, func(a, b int) bool { return members[a].deadline < members[b].deadline })
	ports := 0
	for _, m := range members {
		if len(m.c.In) > ports {
			ports = len(m.c.In)
		}
		if len(m.c.Out) > ports {
			ports = len(m.c.Out)
		}
	}
	acc := make([]float64, 2*ports) // ingress then egress cumulative load
	for k := 0; k < len(members); {
		d := members[k].deadline
		for ; k < len(members) && members[k].deadline == d; k++ {
			for p, v := range members[k].c.In {
				acc[p] += float64(v)
			}
			for p, v := range members[k].c.Out {
				acc[ports+p] += float64(v)
			}
		}
		budget := bandwidth * float64(d)
		for _, load := range acc {
			if load > budget+1e-9 {
				return false
			}
		}
	}
	return true
}

// ShedOrder returns the indices of set ordered by shed priority: the first
// entry is the first candidate to drop under overload — lowest weight
// first, then loosest (largest) deadline, then highest index (newest work
// sheds before older work at equal value). This single ordering is the
// repository's shedding policy; the LP repair loop and recod's job queue
// both shed through it.
func ShedOrder(cands []Candidate, set []int) []int {
	out := append([]int(nil), set...)
	sort.Slice(out, func(a, b int) bool {
		ca, cb := cands[out[a]], cands[out[b]]
		if ca.weight() != cb.weight() {
			return ca.weight() < cb.weight()
		}
		if ca.Deadline != cb.Deadline {
			return ca.Deadline > cb.Deadline
		}
		return out[a] > out[b]
	})
	return out
}

// greedySet packs candidates in admission priority order (weight
// descending, deadline ascending, index ascending), keeping the set
// feasible at every step.
func greedySet(cands []Candidate, opts Options) []int {
	order := make([]int, 0, len(cands))
	for i, c := range cands {
		if admissible(c, opts.Bandwidth) {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		if ca.weight() != cb.weight() {
			return ca.weight() > cb.weight()
		}
		if ca.Deadline != cb.Deadline {
			return ca.Deadline < cb.Deadline
		}
		return order[a] < order[b]
	})
	set := make([]int, 0, len(order))
	for _, i := range order {
		set = append(set, i)
		if !Feasible(cands, set, opts.Bandwidth) {
			set = set[:len(set)-1]
		}
	}
	return set
}

// lpSet solves the fractional admission LP and returns the rounded,
// feasibility-repaired admitted set plus the fractional optimum weight.
//
// Variables: x_i ∈ [0,1] per admissible candidate. Objective: maximize
// Σ w_i·x_i (minimize the negation). Constraints: for every port p and
// every (bucketed) deadline d, Σ_{i: d_i ≤ d} load_i(p)·x_i ≤ Bandwidth·d.
// Deadlines are conservatively rounded down onto at most
// MaxDeadlineBuckets boundaries before constraint generation, so a set
// feasible under the bucketed deadlines is feasible under the true ones.
func lpSet(ctx context.Context, cands []Candidate, opts Options) ([]int, float64, error) {
	// Pool of LP participants: admissible candidates. Unconstrained
	// (NoDeadline) candidates with positive weight are trivially admitted
	// and stay out of the LP.
	var vars []int
	var free []int
	for i, c := range cands {
		switch {
		case !admissible(c, opts.Bandwidth):
		case c.Deadline == NoDeadline || c.load() == 0:
			free = append(free, i)
		default:
			vars = append(vars, i)
		}
	}
	if len(vars) == 0 {
		return free, setWeight(cands, free), nil
	}

	bucketOf := bucketDeadlines(cands, vars, opts.MaxDeadlineBuckets)
	prob := lp.NewProblem()
	col := make(map[int]int, len(vars)) // candidate index -> variable column
	for _, i := range vars {
		col[i] = prob.AddVariable(-cands[i].weight())
	}
	for _, i := range vars {
		if err := prob.AddConstraint(map[int]float64{col[i]: 1}, lp.LE, 1); err != nil {
			return nil, 0, err
		}
	}

	// One constraint per (port side, port, bucket deadline) with any load.
	ports := 0
	for _, i := range vars {
		if len(cands[i].In) > ports {
			ports = len(cands[i].In)
		}
		if len(cands[i].Out) > ports {
			ports = len(cands[i].Out)
		}
	}
	deadlines := distinctSorted(bucketOf, vars)
	for _, d := range deadlines {
		for side := 0; side < 2; side++ {
			for p := 0; p < ports; p++ {
				terms := map[int]float64{}
				for _, i := range vars {
					if bucketOf[i] > d {
						continue
					}
					loads := cands[i].In
					if side == 1 {
						loads = cands[i].Out
					}
					if p < len(loads) && loads[p] > 0 {
						terms[col[i]] = float64(loads[p])
					}
				}
				if len(terms) == 0 {
					continue
				}
				if err := prob.AddConstraint(terms, lp.LE, opts.Bandwidth*float64(d)); err != nil {
					return nil, 0, err
				}
			}
		}
	}

	sol, err := prob.SolveCtx(ctx)
	if err != nil {
		return nil, 0, err
	}
	// Round at 1/2 (Sincronia's rule), then repair the integral set: the
	// rounded-up halves can overpack a port, so shed in ShedOrder until
	// the true (un-bucketed) EDF bound holds again.
	set := append([]int(nil), free...)
	for _, i := range vars {
		if sol.X[col[i]] >= 0.5 {
			set = append(set, i)
		}
	}
	for !Feasible(cands, set, opts.Bandwidth) {
		victim := ShedOrder(cands, set)[0]
		kept := set[:0]
		for _, i := range set {
			if i != victim {
				kept = append(kept, i)
			}
		}
		set = kept
	}
	return set, setWeight(cands, free) - sol.Objective, nil
}

// bucketDeadlines maps each candidate's deadline onto at most maxBuckets
// distinct values, rounding down (never up) so the LP only tightens.
func bucketDeadlines(cands []Candidate, vars []int, maxBuckets int) map[int]int64 {
	distinct := map[int64]bool{}
	for _, i := range vars {
		distinct[cands[i].Deadline] = true
	}
	out := make(map[int]int64, len(vars))
	if len(distinct) <= maxBuckets {
		for _, i := range vars {
			out[i] = cands[i].Deadline
		}
		return out
	}
	sorted := make([]int64, 0, len(distinct))
	for d := range distinct {
		sorted = append(sorted, d)
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	// Pick maxBuckets boundaries spread over the sorted distinct deadlines
	// (always keeping the smallest), then floor every deadline to the
	// nearest boundary at or below it.
	bounds := make([]int64, 0, maxBuckets)
	for k := 0; k < maxBuckets; k++ {
		bounds = append(bounds, sorted[k*len(sorted)/maxBuckets])
	}
	for _, i := range vars {
		d := cands[i].Deadline
		b := bounds[0]
		for _, bound := range bounds {
			if bound <= d {
				b = bound
			}
		}
		out[i] = b
	}
	return out
}

func distinctSorted(bucketOf map[int]int64, vars []int) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, i := range vars {
		if d := bucketOf[i]; !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
