package admission

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"reco/internal/matrix"
	"reco/internal/parallel"
)

func cand(in, out []int64, deadline int64, weight float64) Candidate {
	return Candidate{In: in, Out: out, Deadline: deadline, Weight: weight}
}

func TestAdmitNoDeadlinesAdmitsEverything(t *testing.T) {
	cands := []Candidate{
		cand([]int64{100, 0}, []int64{0, 100}, NoDeadline, 1),
		cand([]int64{900, 900}, []int64{900, 900}, NoDeadline, 0),
		cand([]int64{5}, []int64{5}, NoDeadline, 8),
	}
	d, err := Admit(context.Background(), cands, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if len(d.Admitted) != len(cands) || len(d.Rejected) != 0 {
		t.Fatalf("expected all admitted, got admitted=%v rejected=%v", d.Admitted, d.Rejected)
	}
	if d.AdmittedWeight != d.TotalWeight || d.TotalWeight != 10 {
		t.Fatalf("weights: admitted=%v total=%v", d.AdmittedWeight, d.TotalWeight)
	}
	for i := range cands {
		if !d.IsAdmitted(i) {
			t.Fatalf("IsAdmitted(%d) = false", i)
		}
	}
}

func TestAdmitRejectsHopeless(t *testing.T) {
	cands := []Candidate{
		cand([]int64{10}, []int64{10}, 5, 4),  // needs 10 ticks, has 5
		cand([]int64{3}, []int64{3}, 10, 1),   // fits
		cand([]int64{1}, []int64{1}, 0, 100),  // expired
		cand([]int64{0}, []int64{0}, 0, 2),    // expired but empty: fine
		cand([]int64{2}, []int64{2}, -7, 100), // negative deadline
	}
	d, err := Admit(context.Background(), cands, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	want := []int{1, 3}
	if len(d.Admitted) != len(want) {
		t.Fatalf("admitted %v, want %v", d.Admitted, want)
	}
	for i, v := range want {
		if d.Admitted[i] != v {
			t.Fatalf("admitted %v, want %v", d.Admitted, want)
		}
	}
}

// Under port contention the LP should prefer the heavier candidates. Three
// candidates each need the whole budget of port 0; only one fits.
func TestAdmitPrefersWeight(t *testing.T) {
	cands := []Candidate{
		cand([]int64{10}, []int64{10}, 10, 1),
		cand([]int64{10}, []int64{10}, 10, 5),
		cand([]int64{10}, []int64{10}, 10, 2),
	}
	d, err := Admit(context.Background(), cands, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if len(d.Admitted) != 1 || d.Admitted[0] != 1 {
		t.Fatalf("admitted %v (source %s), want [1]", d.Admitted, d.Source)
	}
	if d.AdmittedWeight != 5 || d.TotalWeight != 8 {
		t.Fatalf("weights admitted=%v total=%v", d.AdmittedWeight, d.TotalWeight)
	}
}

// The LP can beat greedy: greedy takes the single heavy candidate that
// fills the port, while two lighter candidates sum to more weight.
func TestAdmitLPBeatsGreedy(t *testing.T) {
	cands := []Candidate{
		cand([]int64{10}, []int64{10}, 10, 5),
		cand([]int64{6}, []int64{6}, 10, 4),
		cand([]int64{4}, []int64{4}, 10, 3),
	}
	g, err := Greedy(cands, Options{})
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if g.AdmittedWeight != 5 {
		t.Fatalf("greedy admitted weight %v, want 5 (set %v)", g.AdmittedWeight, g.Admitted)
	}
	d, err := Admit(context.Background(), cands, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if d.Source != "lp" || d.AdmittedWeight != 7 {
		t.Fatalf("lp decision: source=%s weight=%v admitted=%v, want lp/7/[1 2]", d.Source, d.AdmittedWeight, d.Admitted)
	}
}

// Admit must never return a lighter set than Greedy, and the result must
// always be feasible — checked over seeded random instances.
func TestAdmitWeightAtLeastGreedy(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(parallel.Seed(11, 0xad1, int64(trial))))
		ports := 2 + rng.Intn(4)
		n := 3 + rng.Intn(12)
		cands := make([]Candidate, n)
		for i := range cands {
			in := make([]int64, ports)
			out := make([]int64, ports)
			for p := 0; p < ports; p++ {
				in[p] = int64(rng.Intn(20))
				out[p] = int64(rng.Intn(20))
			}
			dl := int64(5 + rng.Intn(60))
			if rng.Intn(5) == 0 {
				dl = NoDeadline
			}
			cands[i] = cand(in, out, dl, float64(1+rng.Intn(8)))
		}
		g, err := Greedy(cands, Options{})
		if err != nil {
			t.Fatalf("trial %d: Greedy: %v", trial, err)
		}
		d, err := Admit(context.Background(), cands, Options{})
		if err != nil {
			t.Fatalf("trial %d: Admit: %v", trial, err)
		}
		if d.AdmittedWeight < g.AdmittedWeight {
			t.Fatalf("trial %d: Admit weight %v < Greedy weight %v", trial, d.AdmittedWeight, g.AdmittedWeight)
		}
		if !Feasible(cands, d.Admitted, 0) {
			t.Fatalf("trial %d: admitted set %v infeasible", trial, d.Admitted)
		}
		if !math.IsNaN(d.LPObjective) && d.AdmittedWeight > d.LPObjective+1e-6 {
			t.Fatalf("trial %d: integral weight %v exceeds fractional bound %v", trial, d.AdmittedWeight, d.LPObjective)
		}
		if len(d.Admitted)+len(d.Rejected) != n {
			t.Fatalf("trial %d: partition does not cover input", trial)
		}
	}
}

func TestAdmitCancelledContextFallsBackToGreedy(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cands := []Candidate{
		cand([]int64{10}, []int64{10}, 10, 5),
		cand([]int64{6}, []int64{6}, 10, 4),
		cand([]int64{4}, []int64{4}, 10, 3),
	}
	d, err := Admit(ctx, cands, Options{})
	if err != nil {
		t.Fatalf("Admit with cancelled ctx: %v", err)
	}
	if d.Source != "greedy" {
		t.Fatalf("source = %s, want greedy", d.Source)
	}
	if d.AdmittedWeight != 5 {
		t.Fatalf("greedy fallback weight %v, want 5", d.AdmittedWeight)
	}
}

func TestAdmitOversizedGoesGreedy(t *testing.T) {
	cands := []Candidate{
		cand([]int64{1}, []int64{1}, 10, 1),
		cand([]int64{1}, []int64{1}, 10, 1),
		cand([]int64{1}, []int64{1}, 10, 1),
	}
	d, err := Admit(context.Background(), cands, Options{MaxLPCandidates: 2})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if d.Source != "greedy" {
		t.Fatalf("source = %s, want greedy", d.Source)
	}
}

func TestAdmitDeadlineBucketsStayConservative(t *testing.T) {
	// 20 distinct deadlines force bucketing with MaxDeadlineBuckets=3;
	// every admitted set must still satisfy the true EDF bound.
	var cands []Candidate
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		cands = append(cands, cand([]int64{int64(1 + rng.Intn(6))}, []int64{int64(1 + rng.Intn(6))}, int64(7+3*i), float64(1+rng.Intn(4))))
	}
	d, err := Admit(context.Background(), cands, Options{MaxDeadlineBuckets: 3})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if !Feasible(cands, d.Admitted, 0) {
		t.Fatalf("bucketed admission produced infeasible set %v", d.Admitted)
	}
}

func TestAdmitValidation(t *testing.T) {
	if _, err := Admit(context.Background(), nil, Options{}); err == nil {
		t.Fatal("expected error for empty input")
	}
	bad := []Candidate{cand([]int64{1}, []int64{1}, 10, -1)}
	if _, err := Admit(context.Background(), bad, Options{}); err == nil {
		t.Fatal("expected error for negative weight")
	}
	neg := []Candidate{cand([]int64{-1}, []int64{1}, 10, 1)}
	if _, err := Admit(context.Background(), neg, Options{}); err == nil {
		t.Fatal("expected error for negative load")
	}
}

func TestFeasible(t *testing.T) {
	cands := []Candidate{
		cand([]int64{5, 0}, []int64{0, 5}, 10, 1),
		cand([]int64{6, 0}, []int64{0, 6}, 10, 1),
		cand([]int64{0, 3}, []int64{3, 0}, 4, 1),
		cand([]int64{2}, []int64{2}, NoDeadline, 1),
	}
	if !Feasible(cands, []int{0, 2, 3}, 0) {
		t.Fatal("expected {0,2,3} feasible")
	}
	if Feasible(cands, []int{0, 1}, 0) { // port 0 ingress 11 > 10
		t.Fatal("expected {0,1} infeasible")
	}
	if !Feasible(cands, []int{0, 1}, 1.5) { // higher bandwidth makes it fit
		t.Fatal("expected {0,1} feasible at bandwidth 1.5")
	}
	if !Feasible(cands, nil, 0) {
		t.Fatal("empty set must be feasible")
	}
}

func TestShedOrder(t *testing.T) {
	cands := []Candidate{
		cand([]int64{1}, []int64{1}, 100, 2),        // 0
		cand([]int64{1}, []int64{1}, 10, 1),         // 1: lowest weight, tighter
		cand([]int64{1}, []int64{1}, 500, 1),        // 2: lowest weight, loosest
		cand([]int64{1}, []int64{1}, NoDeadline, 2), // 3: weight 2, no deadline
		cand([]int64{1}, []int64{1}, 100, 4),        // 4
	}
	got := ShedOrder(cands, []int{0, 1, 2, 3, 4})
	want := []int{2, 1, 3, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ShedOrder = %v, want %v", got, want)
		}
	}
}

func TestNewCandidate(t *testing.T) {
	m, err := matrix.FromRows([][]int64{{0, 3}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCandidate(m, 42, 2)
	if c.In[0] != 3 || c.In[1] != 5 || c.Out[0] != 5 || c.Out[1] != 3 {
		t.Fatalf("loads = in %v out %v", c.In, c.Out)
	}
	if c.Deadline != 42 || c.Weight != 2 {
		t.Fatalf("deadline/weight = %d/%v", c.Deadline, c.Weight)
	}
}

func TestAdmitRespectsTimeBudget(t *testing.T) {
	// A moderately sized instance with a tight deadline still returns
	// promptly with a valid (possibly greedy) decision.
	rng := rand.New(rand.NewSource(7))
	var cands []Candidate
	for i := 0; i < 60; i++ {
		in := make([]int64, 16)
		out := make([]int64, 16)
		for p := range in {
			in[p] = int64(rng.Intn(30))
			out[p] = int64(rng.Intn(30))
		}
		cands = append(cands, cand(in, out, int64(50+rng.Intn(200)), float64(1+rng.Intn(8))))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	d, err := Admit(ctx, cands, Options{})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Admit took %v", elapsed)
	}
	if !Feasible(cands, d.Admitted, 0) {
		t.Fatal("admitted set infeasible")
	}
}
