package online

import (
	"math/rand"
	"reflect"
	"testing"

	"reco/internal/matrix"
	"reco/internal/parallel"
)

// denseMatrix builds an n×n demand with uniform entries in [lo, hi).
func denseMatrix(t *testing.T, rng *rand.Rand, n int, lo, hi int64) *matrix.Matrix {
	t.Helper()
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = make([]int64, n)
		for j := range rows[i] {
			if i != j {
				rows[i][j] = lo + rng.Int63n(hi-lo)
			}
		}
	}
	return mustMatrix(t, rows)
}

// SimulateAdmit with AdmitAll must reproduce Simulate byte-for-byte for
// every policy, with or without deadlines on the arrivals: admission with
// infinite headroom is a no-op.
func TestSimulateAdmitAllParity(t *testing.T) {
	policies := []Policy{FIFO{}, SEBF{}, Batch{}, DisjointBatch{}, EDF{}}
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(parallel.Seed(5, 0xade, int64(trial))))
		arrivals := randomArrivals(t, rng, 8, 10, trial%2 == 1)
		for _, pol := range policies {
			want, err := Simulate(arrivals, pol, 10, 4)
			if err != nil {
				t.Fatalf("trial %d %s: Simulate: %v", trial, pol.Name(), err)
			}
			got, err := SimulateAdmit(arrivals, AdmitAll{}, pol, 10, 4)
			if err != nil {
				t.Fatalf("trial %d %s: SimulateAdmit: %v", trial, pol.Name(), err)
			}
			if !reflect.DeepEqual(&got.Result, want) {
				t.Fatalf("trial %d %s: admit-all result diverged:\n got %+v\nwant %+v",
					trial, pol.Name(), got.Result, want)
			}
			for k, r := range got.Rejected {
				if r {
					t.Fatalf("trial %d %s: admit-all rejected arrival %d", trial, pol.Name(), k)
				}
			}
			if got.AdmittedWeight != got.TotalWeight {
				t.Fatalf("trial %d %s: admitted weight %v != total %v",
					trial, pol.Name(), got.AdmittedWeight, got.TotalWeight)
			}
		}
	}
}

// LP admission under overload sheds work, never misses more than it
// serves hopelessly, and records a consistent partition.
func TestSimulateAdmitOverloadSheds(t *testing.T) {
	rng := rand.New(rand.NewSource(parallel.Seed(5, 0xade, 99)))
	// Everything arrives at once with deadlines far too tight for the
	// whole set: admission must reject at least one coflow.
	var arrivals []Arrival
	for i := 0; i < 6; i++ {
		d := denseMatrix(t, rng, 6, 40, 80)
		arrivals = append(arrivals, Arrival{
			Demand:   d,
			At:       0,
			Weight:   float64(1 + i%3),
			Deadline: 900,
		})
	}
	res, err := SimulateAdmit(arrivals, LPAdmit{}, EDF{}, 10, 4)
	if err != nil {
		t.Fatalf("SimulateAdmit: %v", err)
	}
	rejected := 0
	for k, r := range res.Rejected {
		if r {
			rejected++
			if res.CCTs[k] != 0 {
				t.Fatalf("rejected arrival %d has CCT %d", k, res.CCTs[k])
			}
		}
	}
	if rejected == 0 {
		t.Fatal("expected overloaded instance to shed at least one coflow")
	}
	if rejected == len(arrivals) {
		t.Fatal("admission shed everything")
	}
	if res.AdmittedWeight >= res.TotalWeight {
		t.Fatalf("admitted weight %v not below total %v", res.AdmittedWeight, res.TotalWeight)
	}
}

func TestEDFOrdering(t *testing.T) {
	m := func(v int64) *matrix.Matrix {
		d, err := matrix.FromRows([][]int64{{0, v}, {v, 0}})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	arrivals := []Arrival{
		{Demand: m(5), At: 0},               // no deadline: last
		{Demand: m(5), At: 0, Deadline: 90}, // second
		{Demand: m(5), At: 0, Deadline: 40}, // first
		{Demand: m(3), At: 0, Deadline: 90}, // ties with 1 on deadline, smaller rho wins
	}
	pending := []int{0, 1, 2, 3}
	if got := (EDF{}).Pick(pending, arrivals, 0); got[0] != 2 {
		t.Fatalf("EDF picked %v, want 2 first", got)
	}
	if got := (EDF{}).Pick([]int{0, 1, 3}, arrivals, 0); got[0] != 3 {
		t.Fatalf("EDF picked %v, want 3 (smaller rho at equal deadline)", got)
	}
	if got := (EDF{}).Pick([]int{0, 1}, arrivals, 0); got[0] != 1 {
		t.Fatalf("EDF picked %v, want 1 before the deadline-free coflow", got)
	}
}

func TestSimulateAdmitValidation(t *testing.T) {
	arr := []Arrival{{Demand: mustMatrix(t, [][]int64{{0, 1}, {1, 0}}), At: 0}}
	if _, err := SimulateAdmit(nil, AdmitAll{}, FIFO{}, 10, 4); err == nil {
		t.Fatal("expected error for no arrivals")
	}
	if _, err := SimulateAdmit(arr, nil, FIFO{}, 10, 4); err == nil {
		t.Fatal("expected error for nil admitter")
	}
	if _, err := SimulateAdmit(arr, AdmitAll{}, nil, 10, 4); err == nil {
		t.Fatal("expected error for nil policy")
	}
}

func randomArrivals(t *testing.T, rng *rand.Rand, count, n int, withDeadlines bool) []Arrival {
	arrivals := make([]Arrival, count)
	var at int64
	for i := range arrivals {
		d := denseMatrix(t, rng, n, 5, 40)
		arrivals[i] = Arrival{Demand: d, At: at, Weight: float64(1 + rng.Intn(4))}
		if withDeadlines {
			rho := d.MaxRowColSum()
			arrivals[i].Deadline = at + rho*int64(3+rng.Intn(5))
		}
		at += int64(rng.Intn(200))
	}
	return arrivals
}
