package obs

import (
	"testing"
	"time"
)

// The detached benchmarks are the ones the <2% hot-path budget rests on:
// every instrumented call site in sim, matching, lp, and parallel costs
// one Current() load plus a nil-safe helper when no sink is attached.

func BenchmarkDetachedCount(b *testing.B) {
	Detach()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Current().Count("x_total", 1)
	}
}

func BenchmarkDetachedStage(b *testing.B) {
	Detach()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := Current().Stage("s")
		end()
	}
}

func BenchmarkAttachedCount(b *testing.B) {
	Attach(&Sink{Metrics: NewRegistry()})
	b.Cleanup(Detach)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Current().Count("x_total", 1)
	}
}

func BenchmarkAttachedObserve(b *testing.B) {
	Attach(&Sink{Metrics: NewRegistry()})
	b.Cleanup(Detach)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Current().ObserveDuration("lat_seconds", time.Microsecond)
	}
}

func BenchmarkAttachedStage(b *testing.B) {
	Attach(&Sink{Metrics: NewRegistry()})
	b.Cleanup(Detach)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := Current().Stage("s")
		end()
	}
}
