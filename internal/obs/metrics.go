// Package obs is the repository's observability subsystem: a concurrent
// metrics registry (counters, gauges, fixed-bucket streaming histograms),
// span-style stage timing for the scheduling pipeline, and exporters for
// the Prometheus text format, expvar-style JSON, and Chrome trace-event
// JSON (loadable in chrome://tracing or https://ui.perfetto.dev).
//
// Instrumented code never talks to a registry directly; it reads the
// process-wide Sink via Current() and calls its nil-safe helpers. With no
// sink attached — the default — every helper is a single atomic pointer
// load and a branch, so instrumentation stays in hot paths permanently
// instead of behind build tags. Attaching a sink (recod at startup,
// recosim under -tracefile, tests) turns the same call sites into live
// counters, histograms, and trace events.
//
// Everything is stdlib-only. The registry is safe for concurrent use and
// stays clean under the race detector: counters and gauges are single
// atomics, histograms are per-bucket atomics, and the registry itself is a
// sync.Map keyed by the fully-labelled series id.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe on a nil receiver (no-ops), so instrumented
// code can hold possibly-absent handles without branching.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits. The
// zero value is ready to use; methods are nil-safe no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (negative v decrements).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning 10µs (a counter bump) to 10s (a full experiment regeneration).
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// TickBuckets are histogram bounds for simulated-time quantities (CCTs,
// establishment durations), spanning one reconfiguration delay (1e2 ticks)
// to a very long run (~1e8 ticks) at constant ×2 relative resolution.
var TickBuckets = LogBuckets(1e2, 2, 21)

// LogBuckets returns n exponentially spaced histogram bucket upper bounds
// starting at min, each factor times the previous: min, min·factor,
// min·factor², …. Log-scale bounds keep relative resolution constant, which
// is what API latencies spanning µs (a cache hit) to seconds (a cold LP
// solve) need; the fixed DefBuckets would collapse everything below 10µs
// into one bucket. min must be positive, factor > 1 and n ≥ 1 — violations
// are programmer errors and panic.
func LogBuckets(min, factor float64, n int) []float64 {
	if min <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: LogBuckets(%v, %v, %d): need min > 0, factor > 1, n >= 1", min, factor, n))
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NewHistogramLog returns a histogram over LogBuckets(min, factor, n).
func NewHistogramLog(min, factor float64, n int) *Histogram {
	return NewHistogram(LogBuckets(min, factor, n))
}

// Histogram is a fixed-bucket streaming histogram over non-negative
// observations. Bucket counts are independent atomics (not cumulative;
// exporters cumulate), so Observe is wait-free except for the float sum,
// which is a CAS loop. Methods are nil-safe no-ops.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; observations > last go to overflow
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over the given sorted upper bounds; nil
// or empty bounds mean DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound is >= v; linear scan beats binary search at
	// these bucket counts and is branch-predictable for clustered samples.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns per-bucket counts (non-cumulative, overflow last) and
// the total. Concurrent Observes may straddle the reads; the snapshot is
// internally consistent enough for monitoring (counts never decrease).
func (h *Histogram) snapshot() (buckets []int64, total int64) {
	buckets = make([]int64, len(h.buckets))
	for i := range h.buckets {
		c := h.buckets[i].Load()
		buckets[i] = c
		total += c
	}
	return buckets, total
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket holding the target rank. The first bucket interpolates
// from zero (observations are assumed non-negative); ranks landing in the
// overflow bucket return the largest bound, an underestimate by design.
// With no observations Quantile returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	buckets, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - seen) / float64(c)
			return lo + frac*(h.bounds[i]-lo)
		}
		seen += float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a concurrent collection of named metrics. Series are keyed
// by their fully-labelled id (e.g. `http_requests_total{endpoint="GET /"}`
// — see L); reads and get-or-create are lock-free via sync.Map. The zero
// value is ready to use; methods are nil-safe (returning nil metrics whose
// own methods are no-ops).
type Registry struct {
	metrics sync.Map // id -> *Counter | *Gauge | *Histogram
	help    sync.Map // family -> string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under id, creating it on first
// use. Panics if id is already registered as a different metric type.
func (r *Registry) Counter(id string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.metrics.Load(id); ok {
		return mustCounter(id, v)
	}
	v, _ := r.metrics.LoadOrStore(id, &Counter{})
	return mustCounter(id, v)
}

// Gauge returns the gauge registered under id, creating it on first use.
// Panics if id is already registered as a different metric type.
func (r *Registry) Gauge(id string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.metrics.Load(id); ok {
		return mustGauge(id, v)
	}
	v, _ := r.metrics.LoadOrStore(id, &Gauge{})
	return mustGauge(id, v)
}

// Histogram returns the histogram registered under id, creating it over
// bounds (nil: DefBuckets) on first use; later calls ignore bounds and
// return the existing histogram. Panics if id is registered as a
// different metric type.
func (r *Registry) Histogram(id string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.metrics.Load(id); ok {
		return mustHistogram(id, v)
	}
	v, _ := r.metrics.LoadOrStore(id, NewHistogram(bounds))
	return mustHistogram(id, v)
}

// SetHelp attaches a help string to a metric family (the id with any label
// block stripped), emitted as # HELP by the Prometheus exporter.
func (r *Registry) SetHelp(family, text string) {
	if r == nil {
		return
	}
	r.help.Store(family, text)
}

// ids returns all registered series ids, sorted.
func (r *Registry) ids() []string {
	var out []string
	r.metrics.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

func mustCounter(id string, v any) *Counter {
	c, ok := v.(*Counter)
	if !ok {
		panic("obs: metric " + id + " is not a counter")
	}
	return c
}

func mustGauge(id string, v any) *Gauge {
	g, ok := v.(*Gauge)
	if !ok {
		panic("obs: metric " + id + " is not a gauge")
	}
	return g
}

func mustHistogram(id string, v any) *Histogram {
	h, ok := v.(*Histogram)
	if !ok {
		panic("obs: metric " + id + " is not a histogram")
	}
	return h
}

// L renders a series id from a metric family and label key/value pairs:
// L("x_total", "alg", "reco") == `x_total{alg="reco"}`. Values are escaped
// per the Prometheus text format; keys are assumed to be valid label
// names. With no labels it returns the family unchanged.
func L(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// family strips the label block from a series id.
func family(id string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i]
	}
	return id
}

// labels returns the label block of a series id without braces, or "".
func labels(id string) string {
	i := strings.IndexByte(id, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(id[i+1:], "}")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
