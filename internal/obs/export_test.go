package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer serializes writes so the flusher goroutine and the test can
// share one buffer.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestFlushEvery: the push exporter emits one parseable single-line JSON
// snapshot per flush, stop performs a final flush, and stop is idempotent.
func TestFlushEvery(t *testing.T) {
	r := NewRegistry()
	r.Counter("flush_test_total").Add(3)
	r.Gauge("flush_test_gauge").Set(1.5)

	var buf lockedBuffer
	stop := r.FlushEvery(&buf, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for strings.Count(buf.String(), "\n") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no periodic snapshots within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	r.Counter("flush_test_total").Add(4)
	stop()
	stop() // idempotent

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("got %d snapshots, want at least 3", len(lines))
	}
	for i, line := range lines {
		var snap map[string]any
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("snapshot %d is not one JSON line: %v\n%s", i, err, line)
		}
		if _, ok := snap["flush_test_total"]; !ok {
			t.Fatalf("snapshot %d misses the counter: %s", i, line)
		}
	}
	// The final (post-stop) flush sees the last counter value.
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if got := last["flush_test_total"].(float64); got != 7 {
		t.Fatalf("final snapshot counter = %v, want 7", got)
	}
}

// TestFlushEveryStopOnly: a non-positive interval flushes exactly once, on
// stop — the degenerate "final snapshot only" mode.
func TestFlushEveryStopOnly(t *testing.T) {
	r := NewRegistry()
	r.Counter("flush_once_total").Inc()
	var buf lockedBuffer
	stop := r.FlushEvery(&buf, 0)
	stop()
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("interval 0 wrote %d snapshots, want exactly 1", got)
	}
}

// TestFlushEveryGlobal: the package-level exporter follows the attached
// sink — snapshots are empty while detached and carry the registry's
// series while attached.
func TestFlushEveryGlobal(t *testing.T) {
	defer Detach()
	Detach()
	var buf lockedBuffer
	stop := FlushEvery(&buf, 0)
	r := NewRegistry()
	r.Counter("flush_global_total").Inc()
	Attach(&Sink{Metrics: r})
	stop()
	var snap map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["flush_global_total"]; !ok {
		t.Fatalf("attached registry missing from snapshot: %s", buf.String())
	}
}
