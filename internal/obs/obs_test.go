package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	var nilC *Counter
	nilC.Inc() // must not panic
	if nilC.Value() != 0 {
		t.Error("nil counter has a value")
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("Value = %v, want 1.5", got)
	}
	var nilG *Gauge
	nilG.Set(1)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Error("nil gauge has a value")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 samples uniform over (0, 4]: 25 per bucket 1,2 and 50 in (2,4].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if want := 202.0; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
	// Exact interpolation: the median rank (50) sits at the end of the
	// (1,2] bucket, so the estimate is its upper bound.
	if got := h.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := h.Quantile(1); math.Abs(got-4) > 1e-9 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	// Overflow bucket clamps to the largest bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) with overflow = %v, want 8", got)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("empty histogram not zero-valued")
	}
	var nilH *Histogram
	nilH.Observe(1)
	nilH.ObserveDuration(time.Second)
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile non-zero")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Error("Counter did not return the same instance")
	}
	h1 := r.Histogram("h_seconds", []float64{1, 2})
	h2 := r.Histogram("h_seconds", nil) // bounds ignored after creation
	if h1 != h2 {
		t.Error("Histogram did not return the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("type mismatch did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestRegistryNil(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", nil).Observe(1)
	r.SetHelp("a", "help")
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelFormatting(t *testing.T) {
	got := L("req_total", "method", "GET", "path", `a"b\c`)
	want := `req_total{method="GET",path="a\"b\\c"}`
	if got != want {
		t.Errorf("L = %q, want %q", got, want)
	}
	if L("plain") != "plain" {
		t.Error("L without labels changed the family")
	}
	if family(got) != "req_total" {
		t.Errorf("family = %q", family(got))
	}
	if labels("plain") != "" {
		t.Error("labels of unlabelled id not empty")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("req_total", "requests served")
	r.Counter(L("req_total", "code", "200")).Add(3)
	r.Counter(L("req_total", "code", "500")).Add(1)
	r.Gauge("inflight").Set(2)
	h := r.Histogram(L("lat_seconds", "ep", "x"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP req_total requests served",
		"# TYPE req_total counter",
		`req_total{code="200"} 3`,
		`req_total{code="500"} 1`,
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{ep="x",le="0.1"} 1`,
		`lat_seconds_bucket{ep="x",le="1"} 2`,
		`lat_seconds_bucket{ep="x",le="+Inf"} 3`,
		`lat_seconds_sum{ep="x"} 5.55`,
		`lat_seconds_count{ep="x"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// A family's TYPE line must precede its samples.
	if strings.Index(out, "# TYPE req_total") > strings.Index(out, `req_total{code="200"}`) {
		t.Error("TYPE line after samples")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.5)
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if string(out["c"]) != "7" {
		t.Errorf("c = %s", out["c"])
	}
	var hist histogramJSON
	if err := json.Unmarshal(out["h"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 2 || hist.Sum != 2 {
		t.Errorf("histogram JSON = %+v", hist)
	}
}

func TestSinkDetachedHelpers(t *testing.T) {
	var s *Sink
	s.Count("a", 1)
	s.Inc("a")
	s.GaugeSet("b", 1)
	s.GaugeAdd("b", 1)
	s.Observe("c", 1)
	s.ObserveDuration("c", time.Second)
	s.TickSpan("t", "n", 0, 1, nil)
	s.TickInstant("t", "n", 0, nil)
	end := s.Stage("x")
	end()
	s.SpanBegin("cat", "n")(nil)
}

func TestAttachCurrentDetach(t *testing.T) {
	t.Cleanup(Detach)
	if Enabled() {
		t.Fatal("sink attached at test start")
	}
	s := &Sink{Metrics: NewRegistry()}
	Attach(s)
	if Current() != s || !Enabled() {
		t.Error("Attach did not install the sink")
	}
	Current().Inc("hits_total")
	if s.Metrics.Counter("hits_total").Value() != 1 {
		t.Error("helper did not reach the registry")
	}
	Detach()
	if Current() != nil || Enabled() {
		t.Error("Detach left the sink attached")
	}
}

func TestSinkStageRecordsHistogram(t *testing.T) {
	s := &Sink{Metrics: NewRegistry(), Trace: NewTracer()}
	end := s.Stage("stuff")
	end()
	id := L("pipeline_stage_seconds", "stage", "stuff")
	if s.Metrics.Histogram(id, nil).Count() != 1 {
		t.Error("stage duration not observed")
	}
	if s.Trace.Len() != 1 {
		t.Errorf("trace has %d events, want 1", s.Trace.Len())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// get-or-create races, counter adds, gauge CAS, histogram observes — while
// exporters render concurrently. Run under -race this proves the registry
// is data-race free; the final counts prove no increments were lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	wg.Add(workers + 2)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hits_total").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				r.Histogram("lat_seconds", nil).Observe(float64(i%10) * 1e-4)
			}
		}()
	}
	for e := 0; e < 2; e++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b bytes.Buffer
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if err := r.WriteJSON(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total").Value(); got != workers*perWorker {
		t.Errorf("hits_total = %d, want %d (lost updates)", got, workers*perWorker)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Errorf("depth = %v, want 0", got)
	}
	if got := r.Histogram("lat_seconds", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Errorf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { LogBuckets(0, 2, 4) },
		func() { LogBuckets(1e-6, 1, 4) },
		func() { LogBuckets(1e-6, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid LogBuckets args did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestNewHistogramLogResolvesMicroseconds(t *testing.T) {
	// A µs-scale sample must not share a bucket with a ms-scale sample, which
	// is exactly what DefBuckets (first bound 10µs) cannot guarantee.
	h := NewHistogramLog(1e-6, 2, 24)
	h.Observe(3e-6)
	p50 := h.Quantile(0.5)
	if p50 < 1e-6 || p50 > 8e-6 {
		t.Errorf("p50 = %v, want within a factor-2 bucket of 3µs", p50)
	}
	h2 := NewHistogramLog(1e-6, 2, 24)
	for i := 0; i < 100; i++ {
		h2.Observe(2e-3) // 2ms
	}
	if q := h2.Quantile(0.5); q < 1e-3 || q > 4e-3 {
		t.Errorf("ms-scale p50 = %v, want ~2ms", q)
	}
}
