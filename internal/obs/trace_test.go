package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// chromeTrace mirrors the exported object enough to assert on it.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func decodeTrace(t *testing.T, tr *Tracer) chromeTrace {
	t.Helper()
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var out chromeTrace
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v\n%s", err, b.String())
	}
	return out
}

func TestTracerWallSpans(t *testing.T) {
	tr := NewTracer()
	end := tr.Begin("stage", "stuff")
	end(map[string]any{"n": 4})
	out := decodeTrace(t, tr)
	var found bool
	for _, ev := range out.TraceEvents {
		if ev.Name == "stuff" && ev.Ph == "X" && ev.PID == pidWall {
			found = true
			if ev.Dur < 1 {
				t.Errorf("span dur = %d, want >= 1", ev.Dur)
			}
			if ev.Args["n"] != float64(4) {
				t.Errorf("span args = %v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatalf("wall span missing from trace: %+v", out.TraceEvents)
	}
}

// TestTracerSlotReuse: concurrent spans get distinct rows; sequential
// spans reuse row 0.
func TestTracerSlotReuse(t *testing.T) {
	tr := NewTracer()
	end1 := tr.Begin("c", "a")
	end2 := tr.Begin("c", "b") // overlaps span a -> distinct tid
	end1(nil)
	end2(nil)
	end3 := tr.Begin("c", "c") // both released -> back to tid 0
	end3(nil)
	out := decodeTrace(t, tr)
	tids := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Name] = ev.TID
		}
	}
	if tids["a"] == tids["b"] {
		t.Errorf("overlapping spans share tid %d", tids["a"])
	}
	if tids["c"] != 0 {
		t.Errorf("sequential span tid = %d, want 0", tids["c"])
	}
}

func TestTracerTickEvents(t *testing.T) {
	tr := NewTracer()
	tr.TickSpan("switch", "reconfig", 0, 100, nil)
	tr.TickSpan("switch", "transmit", 100, 400, map[string]any{"est": 0})
	tr.TickInstant("faults", "port-down", 250, map[string]any{"port": 3})
	out := decodeTrace(t, tr)

	names := map[string]bool{}
	threadNames := map[int]string{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.PID == pidSim {
			threadNames[ev.TID], _ = ev.Args["name"].(string)
		}
		if ev.PID == pidSim && ev.Ph != "M" {
			names[ev.Name] = true
			if ev.Name == "transmit" && (ev.TS != 100 || ev.Dur != 300) {
				t.Errorf("transmit ts/dur = %d/%d, want 100/300", ev.TS, ev.Dur)
			}
		}
	}
	for _, want := range []string{"reconfig", "transmit", "port-down"} {
		if !names[want] {
			t.Errorf("trace missing sim event %q", want)
		}
	}
	// Both tracks are named via metadata.
	var haveSwitch, haveFaults bool
	for _, n := range threadNames {
		haveSwitch = haveSwitch || n == "switch"
		haveFaults = haveFaults || n == "faults"
	}
	if !haveSwitch || !haveFaults {
		t.Errorf("track metadata missing: %v", threadNames)
	}
}

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Begin("c", "n")(nil)
	tr.TickSpan("t", "n", 0, 1, nil)
	tr.TickInstant("t", "n", 0, nil)
	if tr.Len() != 0 {
		t.Error("nil tracer has events")
	}
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var out chromeTrace
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("nil tracer output invalid: %v", err)
	}
}

// TestTracerConcurrency: spans and tick events from many goroutines while
// WriteChrome snapshots concurrently; -race must stay clean.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				end := tr.Begin("trial", "t")
				tr.TickSpan("track", "ev", int64(i), int64(i+1), map[string]any{"w": w})
				end(nil)
			}
		}()
	}
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = tr.WriteChrome(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	if got := tr.Len(); got != workers*200*2 {
		t.Errorf("event count = %d, want %d", got, workers*200*2)
	}
}
