package obs

import (
	"sync/atomic"
	"time"
)

// Sink bundles the destinations instrumentation writes to. Either field
// may be nil: recod attaches metrics only, recosim -tracefile attaches
// both, tests attach whatever they assert on.
type Sink struct {
	// Metrics receives counters, gauges, and histograms.
	Metrics *Registry
	// Trace receives wall-clock spans and simulated-tick events.
	Trace *Tracer
}

// active is the process-wide sink. Instrumented call sites load it once
// per operation; with nothing attached the whole instrumentation cost is
// this load and a nil check.
var active atomic.Pointer[Sink]

// Attach installs s as the process-wide sink. Attach(nil) detaches.
// Attaching replaces any previous sink; in-flight operations that already
// captured the old sink keep writing to it, which is harmless.
func Attach(s *Sink) {
	active.Store(s)
}

// Detach removes the process-wide sink.
func Detach() {
	active.Store(nil)
}

// Current returns the attached sink, or nil. Callers on a hot path should
// capture it once per operation rather than per event.
func Current() *Sink {
	return active.Load()
}

// Enabled reports whether any sink is attached.
func Enabled() bool {
	return active.Load() != nil
}

// Count adds n to the named counter. Nil-safe on s and on either field.
func (s *Sink) Count(id string, n int64) {
	if s == nil {
		return
	}
	s.Metrics.Counter(id).Add(n)
}

// Inc adds one to the named counter.
func (s *Sink) Inc(id string) { s.Count(id, 1) }

// GaugeSet sets the named gauge.
func (s *Sink) GaugeSet(id string, v float64) {
	if s == nil {
		return
	}
	s.Metrics.Gauge(id).Set(v)
}

// GaugeAdd adjusts the named gauge.
func (s *Sink) GaugeAdd(id string, v float64) {
	if s == nil {
		return
	}
	s.Metrics.Gauge(id).Add(v)
}

// Observe records a sample into the named histogram (default buckets).
func (s *Sink) Observe(id string, v float64) {
	if s == nil {
		return
	}
	s.Metrics.Histogram(id, nil).Observe(v)
}

// ObserveDuration records d in seconds into the named histogram.
func (s *Sink) ObserveDuration(id string, d time.Duration) {
	s.Observe(id, d.Seconds())
}

// ObserveBuckets records a sample into the named histogram, created over
// bounds on first use (e.g. TickBuckets for simulated-time quantities).
func (s *Sink) ObserveBuckets(id string, bounds []float64, v float64) {
	if s == nil {
		return
	}
	s.Metrics.Histogram(id, bounds).Observe(v)
}

// stageNop is the shared end function for detached stages.
func stageNop() {}

// Stage opens a pipeline-stage timing span named stage and returns its end
// function. The span lands on the tracer (category "stage") when one is
// attached, and its duration is observed into the
// pipeline_stage_seconds{stage="..."} histogram when metrics are attached.
// With s == nil the returned function is a shared no-op and no clock is
// read.
func (s *Sink) Stage(stage string) func() {
	if s == nil {
		return stageNop
	}
	var endTrace func(map[string]any)
	if s.Trace != nil {
		endTrace = s.Trace.Begin("stage", stage)
	}
	var start time.Time
	if s.Metrics != nil {
		start = time.Now()
	}
	return func() {
		if endTrace != nil {
			endTrace(nil)
		}
		if s.Metrics != nil {
			s.Metrics.Histogram(L("pipeline_stage_seconds", "stage", stage), nil).
				ObserveDuration(time.Since(start))
		}
	}
}

// TickSpan forwards a simulated-time span to the attached tracer.
func (s *Sink) TickSpan(track, name string, start, end int64, args map[string]any) {
	if s == nil {
		return
	}
	s.Trace.TickSpan(track, name, start, end, args)
}

// TickInstant forwards a simulated-time instant to the attached tracer.
func (s *Sink) TickInstant(track, name string, tick int64, args map[string]any) {
	if s == nil {
		return
	}
	s.Trace.TickInstant(track, name, tick, args)
}

// SpanBegin opens a wall-clock span on the attached tracer and returns its
// end function (a shared no-op when no tracer is attached).
func (s *Sink) SpanBegin(cat, name string) func(args map[string]any) {
	if s == nil || s.Trace == nil {
		return nopEnd
	}
	return s.Trace.Begin(cat, name)
}
