package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace-event pids. Wall-clock spans (pipeline stages, trials) and
// simulated-time events (establishments, faults) live in different
// timebases, so the Chrome trace keeps them in separate "processes": one
// tick renders as one microsecond on the simulator track.
const (
	pidWall = 1
	pidSim  = 2
)

// Tracer accumulates Chrome trace events: wall-clock spans via Begin and
// simulated-tick spans/instants via TickSpan/TickInstant. It is safe for
// concurrent use; all methods are nil-safe no-ops, so instrumented code
// can call through an absent tracer for free.
//
// A tracer from NewTracer grows without bound — fine for short recosim
// runs, wrong for long rate-based or load-test sessions. NewTracerCap
// bounds it with a ring buffer: once full, each new event overwrites the
// oldest and Dropped counts the overwritten ones, so the trace always
// holds the most recent window and the drop counter says how much history
// it lost.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	events  []traceEvent
	cap     int            // ring capacity; 0 = unbounded
	head    int            // index of the oldest event when the ring is full
	dropped int64          // events overwritten by the ring
	slots   []bool         // wall-span rows in use, index = tid
	tracks  map[string]int // tick track name -> tid
	order   []string       // tick tracks in first-use order
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns an unbounded tracer whose wall-clock origin is now.
func NewTracer() *Tracer {
	return NewTracerCap(0)
}

// NewTracerCap returns a tracer bounded to the most recent n events (a
// ring buffer; see the Tracer doc). n <= 0 means unbounded.
func NewTracerCap(n int) *Tracer {
	if n < 0 {
		n = 0
	}
	return &Tracer{start: time.Now(), cap: n, tracks: make(map[string]int)}
}

// Dropped returns how many events the ring buffer has overwritten. It is
// always 0 for an unbounded tracer.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// recordLocked appends an event, overwriting the oldest when the ring is
// full; t.mu must be held.
func (t *Tracer) recordLocked(ev traceEvent) {
	if t.cap <= 0 || len(t.events) < t.cap {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.head] = ev
	t.head = (t.head + 1) % t.cap
	t.dropped++
}

// snapshotLocked copies the events in recording order; t.mu must be held.
func (t *Tracer) snapshotLocked() []traceEvent {
	out := make([]traceEvent, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Begin opens a wall-clock span and returns the function that closes it.
// Concurrent spans are placed on distinct rows (the lowest free tid), so
// overlapping work from parallel workers renders side by side. The end
// function must be called exactly once; args recorded there end up on the
// event.
func (t *Tracer) Begin(cat, name string) func(args map[string]any) {
	if t == nil {
		return nopEnd
	}
	start := time.Since(t.start)
	t.mu.Lock()
	tid := 0
	for tid < len(t.slots) && t.slots[tid] {
		tid++
	}
	if tid == len(t.slots) {
		t.slots = append(t.slots, true)
	} else {
		t.slots[tid] = true
	}
	t.mu.Unlock()
	return func(args map[string]any) {
		dur := time.Since(t.start) - start
		t.mu.Lock()
		t.recordLocked(traceEvent{
			Name: name, Cat: cat, Ph: "X", PID: pidWall, TID: tid,
			TS: start.Microseconds(), Dur: max64(dur.Microseconds(), 1), Args: args,
		})
		t.slots[tid] = false
		t.mu.Unlock()
	}
}

func nopEnd(map[string]any) {}

// TickSpan records a complete span on the simulated-time axis: [start,
// end] in ticks on the named track (one track per row). Zero-length spans
// are widened to one tick so they stay visible.
func (t *Tracer) TickSpan(track, name string, start, end int64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recordLocked(traceEvent{
		Name: name, Ph: "X", PID: pidSim, TID: t.trackLocked(track),
		TS: start, Dur: max64(end-start, 1), Args: args,
	})
	t.mu.Unlock()
}

// TickInstant records an instantaneous event at tick on the named track.
func (t *Tracer) TickInstant(track, name string, tick int64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recordLocked(traceEvent{
		Name: name, Ph: "i", PID: pidSim, TID: t.trackLocked(track),
		TS: tick, S: "t", Args: args,
	})
	t.mu.Unlock()
}

// trackLocked resolves a tick track name to its tid; t.mu must be held.
func (t *Tracer) trackLocked(track string) int {
	if tid, ok := t.tracks[track]; ok {
		return tid
	}
	tid := len(t.tracks)
	t.tracks[track] = tid
	t.order = append(t.order, track)
	return tid
}

// Len returns the number of events recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteChrome renders the accumulated events as Chrome trace-event JSON
// (the object form, with process/thread naming metadata), loadable in
// chrome://tracing and Perfetto. Safe to call while events are still being
// recorded; it snapshots under the lock.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	events := t.snapshotLocked()
	tracks := append([]string(nil), t.order...)
	t.mu.Unlock()

	meta := []traceEvent{
		{Name: "process_name", Ph: "M", PID: pidWall, Args: map[string]any{"name": "scheduler (wall clock)"}},
		{Name: "process_name", Ph: "M", PID: pidSim, Args: map[string]any{"name": "simulator (1 tick = 1us)"}},
	}
	for tid, name := range tracks {
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", PID: pidSim, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	out := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{append(meta, events...), "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
