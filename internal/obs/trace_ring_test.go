package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func ringEventNames(t *testing.T, tr *Tracer) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var names []string
	for _, ev := range out.TraceEvents {
		if ev.Ph != "M" { // skip naming metadata
			names = append(names, ev.Name)
		}
	}
	return names
}

func TestTracerRingKeepsNewestAndCountsDrops(t *testing.T) {
	tr := NewTracerCap(3)
	for i := 0; i < 7; i++ {
		tr.TickInstant("track", fmt.Sprintf("e%d", i), int64(i), nil)
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	names := ringEventNames(t, tr)
	want := []string{"e4", "e5", "e6"}
	if len(names) != len(want) {
		t.Fatalf("events %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("events %v, want %v (oldest-first order)", names, want)
		}
	}
}

func TestTracerUnboundedNeverDrops(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 100; i++ {
		tr.TickInstant("track", "e", int64(i), nil)
	}
	if tr.Len() != 100 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 100/0", tr.Len(), tr.Dropped())
	}
}

func TestTracerRingUnderCapacity(t *testing.T) {
	tr := NewTracerCap(10)
	tr.TickInstant("track", "a", 1, nil)
	tr.TickInstant("track", "b", 2, nil)
	if tr.Len() != 2 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 2/0", tr.Len(), tr.Dropped())
	}
	names := ringEventNames(t, tr)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("events %v, want [a b]", names)
	}
}

func TestNilTracerDropped(t *testing.T) {
	var tr *Tracer
	if tr.Dropped() != 0 {
		t.Fatal("nil tracer must report zero drops")
	}
}
