package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Series are grouped by family so each
// # TYPE line precedes all of its samples; histograms expand into
// cumulative _bucket series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	ids := r.ids()
	// Group ids by family, preserving the sorted order.
	fams := make(map[string][]string)
	var famOrder []string
	for _, id := range ids {
		f := family(id)
		if _, ok := fams[f]; !ok {
			famOrder = append(famOrder, f)
		}
		fams[f] = append(fams[f], id)
	}
	sort.Strings(famOrder)
	for _, f := range famOrder {
		if h, ok := r.help.Load(f); ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f, h); err != nil {
				return err
			}
		}
		v0, _ := r.metrics.Load(fams[f][0])
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, promType(v0)); err != nil {
			return err
		}
		for _, id := range fams[f] {
			v, ok := r.metrics.Load(id)
			if !ok {
				continue
			}
			if err := writePromSeries(w, id, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func promType(v any) string {
	switch v.(type) {
	case *Counter:
		return "counter"
	case *Gauge:
		return "gauge"
	case *Histogram:
		return "histogram"
	}
	return "untyped"
}

func writePromSeries(w io.Writer, id string, v any) error {
	switch m := v.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", id, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", id, formatFloat(m.Value()))
		return err
	case *Histogram:
		fam, lbl := family(id), labels(id)
		buckets, total := m.snapshot()
		var cum int64
		for i, c := range buckets {
			cum += c
			le := "+Inf"
			if i < len(m.bounds) {
				le = formatFloat(m.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fam, lblPrefix(lbl), le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, lblBlock(lbl), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, lblBlock(lbl), total)
		return err
	}
	return nil
}

// lblPrefix renders existing labels for splicing before an le label.
func lblPrefix(lbl string) string {
	if lbl == "" {
		return ""
	}
	return lbl + ","
}

// lblBlock renders an optional label block.
func lblBlock(lbl string) string {
	if lbl == "" {
		return ""
	}
	return "{" + lbl + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histogramJSON is the JSON shape of one histogram series.
type histogramJSON struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// snapshotJSON collects every registered metric into the expvar-style map
// WriteJSON and FlushEvery serialize: counters and gauges as numbers,
// histograms as {count, sum, p50, p95, p99} objects.
func (r *Registry) snapshotJSON() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	for _, id := range r.ids() {
		v, ok := r.metrics.Load(id)
		if !ok {
			continue
		}
		switch m := v.(type) {
		case *Counter:
			out[id] = m.Value()
		case *Gauge:
			out[id] = m.Value()
		case *Histogram:
			out[id] = histogramJSON{
				Count: m.Count(), Sum: m.Sum(),
				P50: m.Quantile(0.50), P95: m.Quantile(0.95), P99: m.Quantile(0.99),
			}
		}
	}
	return out
}

// WriteJSON renders every registered metric as a single expvar-style JSON
// object keyed by series id: counters and gauges as numbers, histograms as
// {count, sum, p50, p95, p99} objects. Keys are emitted sorted (the
// encoding/json map behavior), so output is stable for tests and diffing.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshotJSON())
}

// FlushEvery starts a background goroutine that writes one compact
// (single-line) JSON snapshot of the registry to w every interval — a push
// exporter for long runs that should be monitorable without an HTTP
// endpoint to scrape (`tail -f` of the snapshot stream). The returned stop
// function writes one final snapshot, waits for the goroutine to exit, and
// is idempotent. Write errors are ignored: monitoring must never abort the
// run it observes. A nil registry emits empty {} snapshots; intervals ≤ 0
// flush only on stop.
func (r *Registry) FlushEvery(w io.Writer, interval time.Duration) (stop func()) {
	return flushEvery(func() *Registry { return r }, w, interval)
}

// FlushEvery is the package-level push exporter over the process-global
// sink: each snapshot reads the registry attached at that moment (empty
// when detached), so one exporter can span attach/detach cycles. See
// Registry.FlushEvery for semantics.
func FlushEvery(w io.Writer, interval time.Duration) (stop func()) {
	return flushEvery(func() *Registry {
		if s := Current(); s != nil {
			return s.Metrics
		}
		return nil
	}, w, interval)
}

func flushEvery(reg func() *Registry, w io.Writer, interval time.Duration) (stop func()) {
	flush := func() {
		enc := json.NewEncoder(w) // no indent: one snapshot per line
		_ = enc.Encode(reg().snapshotJSON())
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		if interval <= 0 {
			<-done
			return
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				flush()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
			flush()
		})
	}
}

// PromHandler serves WritePrometheus over HTTP (GET only).
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves WriteJSON over HTTP (GET only).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}
