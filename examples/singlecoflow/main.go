// Singlecoflow: schedule a realistic MapReduce shuffle with Reco-Sin and
// compare it against Solstice and the theoretical lower bound across a sweep
// of reconfiguration delays — the scenario of the paper's Figs. 4 and 5.
//
//	go run ./examples/singlecoflow
package main

import (
	"fmt"
	"log"

	"reco"
	"reco/internal/ocs"
	"reco/internal/solstice"
	"reco/internal/workload"
)

func main() {
	// One shuffle-heavy workload on a 48-port fabric; pick its densest
	// coflow as the subject (dense M2M coflows carry nearly all bytes).
	coflows, err := reco.GenerateWorkload(48, 60, 7)
	if err != nil {
		log.Fatal(err)
	}
	var subject reco.Coflow
	for _, c := range coflows {
		if workload.Classify(c.Demand) == workload.Dense {
			subject = c
			break
		}
	}
	if subject.Demand == nil {
		log.Fatal("no dense coflow in the workload")
	}
	fmt.Printf("subject: coflow %d, %d ports, density %.2f, %d flows, %d total ticks\n\n",
		subject.ID, subject.Demand.N(), subject.Demand.Density(),
		subject.Demand.NonZeros(), subject.Demand.Total())

	fmt.Printf("%8s  %22s  %22s  %10s\n", "delta", "Reco-Sin (CCT/reconf)", "Solstice (CCT/reconf)", "lowerbound")
	for _, delta := range []int64{10, 100, 1000, 10000} {
		recoRes, err := reco.ScheduleSingle(subject.Demand, delta)
		if err != nil {
			log.Fatal(err)
		}
		solCS, err := solstice.Schedule(subject.Demand)
		if err != nil {
			log.Fatal(err)
		}
		solRes, err := ocs.ExecAllStop(subject.Demand, solCS, delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %13d /%7d  %13d /%7d  %10d\n",
			delta, recoRes.CCT, recoRes.Reconfigs, solRes.CCT, solRes.Reconfigs,
			recoRes.LowerBound)
	}
	fmt.Println("\nReco-Sin's reconfiguration count falls as delta grows (regularization")
	fmt.Println("aligns more demand), while Solstice's schedule is delta-independent.")
}
