// Onlinearrivals: serve a stream of arriving coflows with the online
// controller (the paper's stated future direction) and compare its policies:
// FIFO and SEBF dispatching one coflow at a time through Reco-Sin, versus
// batching every pending coflow through Reco-Mul.
//
//	go run ./examples/onlinearrivals
package main

import (
	"fmt"
	"log"
	"math/rand"

	"reco"
	"reco/internal/online"
	"reco/internal/stats"
)

func main() {
	const (
		ports = 24
		delta = 100
		c     = 4
	)
	coflows, err := reco.GenerateWorkload(ports, 30, 11)
	if err != nil {
		log.Fatal(err)
	}
	// A bursty arrival stream: short gaps with occasional lulls.
	rng := rand.New(rand.NewSource(2))
	arrivals := make([]online.Arrival, len(coflows))
	var at int64
	for i, cf := range coflows {
		arrivals[i] = online.Arrival{Demand: cf.Demand, At: at, Weight: 1}
		gap := rng.Int63n(800)
		if rng.Float64() < 0.2 {
			gap += 5000 // lull
		}
		at += gap
	}
	fmt.Printf("%d coflows arriving over %d ticks on a %d-port OCS\n\n", len(arrivals), at, ports)

	fmt.Printf("%-16s  %10s  %10s  %10s  %6s\n", "policy", "avg CCT", "95p CCT", "reconfigs", "units")
	for _, pol := range []online.Policy{online.FIFO{}, online.SEBF{}, online.Batch{}, online.DisjointBatch{}} {
		res, err := online.Simulate(arrivals, pol, delta, c)
		if err != nil {
			log.Fatal(err)
		}
		vals := stats.Int64s(res.CCTs)
		mean, err := stats.Mean(vals)
		if err != nil {
			log.Fatal(err)
		}
		p95, _ := stats.Percentile(vals, 95)
		fmt.Printf("%-16s  %10.0f  %10.0f  %10d  %6d\n", res.Policy, mean, p95, res.Reconfigs, res.ServiceUnits)
	}
	fmt.Println("\nSEBF avoids head-of-line blocking behind elephants; batching amortizes")
	fmt.Println("reconfigurations but delays early arrivals until the batch drains.")
}
