// Multicoflow: schedule a mixed datacenter workload with Reco-Mul and
// compare the per-coflow completion times against the two multi-coflow
// baselines the paper evaluates (LP-II-GB and SEBF+Solstice) — the scenario
// of the paper's Figs. 6–8.
//
//	go run ./examples/multicoflow
package main

import (
	"fmt"
	"log"

	"reco"
	"reco/internal/lpiigb"
	"reco/internal/matrix"
	"reco/internal/ocs"
	"reco/internal/ordering"
	"reco/internal/solstice"
	"reco/internal/stats"
	"reco/internal/workload"
)

func main() {
	const (
		ports = 40
		delta = 100
		c     = 4
	)
	coflows, err := reco.GenerateWorkload(ports, 24, 42)
	if err != nil {
		log.Fatal(err)
	}
	ds := make([]*matrix.Matrix, len(coflows))
	for i, cf := range coflows {
		ds[i] = cf.Demand
	}

	recoRes, err := reco.ScheduleMultiple(ds, nil, delta, c)
	if err != nil {
		log.Fatal(err)
	}
	lpRes, err := lpiigb.ScheduleSequential(ds, nil, delta)
	if err != nil {
		log.Fatal(err)
	}
	schedules := make([]ocs.CircuitSchedule, len(ds))
	for k, d := range ds {
		if schedules[k], err = solstice.Schedule(d); err != nil {
			log.Fatal(err)
		}
	}
	sebfRes, err := ocs.ExecSequential(ds, schedules, ordering.SEBF(ds), delta)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d coflows on a %d-port OCS (delta=%d, c=%d)\n\n", len(ds), ports, delta, c)
	fmt.Printf("%-14s  %10s  %10s  %10s\n", "algorithm", "avg CCT", "95p CCT", "reconfigs")
	report := func(name string, ccts []int64, reconfigs int) {
		vals := stats.Int64s(ccts)
		mean, _ := stats.Mean(vals)
		p95, _ := stats.Percentile(vals, 95)
		fmt.Printf("%-14s  %10.0f  %10.0f  %10d\n", name, mean, p95, reconfigs)
	}
	report("Reco-Mul", recoRes.CCTs, recoRes.Reconfigs)
	report("LP-II-GB", lpRes.CCTs, lpRes.Reconfigs)
	report("SEBF+Solstice", sebfRes.CCTs, sebfRes.Reconfigs)

	fmt.Println("\nper-class average CCT (ticks):")
	fmt.Printf("%-8s  %10s  %10s  %10s\n", "class", "Reco-Mul", "LP-II-GB", "SEBF+Sol")
	for _, cl := range []workload.Class{workload.Sparse, workload.Normal, workload.Dense} {
		var r, l, s, n float64
		for k := range ds {
			if workload.Classify(ds[k]) != cl {
				continue
			}
			n++
			r += float64(recoRes.CCTs[k])
			l += float64(lpRes.CCTs[k])
			s += float64(sebfRes.CCTs[k])
		}
		if n == 0 {
			continue
		}
		fmt.Printf("%-8s  %10.0f  %10.0f  %10.0f\n", cl, r/n, l/n, s/n)
	}
	fmt.Println("\nReco-Mul lets disjoint-port coflows share the fabric and aligns their")
	fmt.Println("start times so conflict-free flows share reconfigurations; the baselines")
	fmt.Println("hand the switch to one coflow (or group) at a time.")
}
