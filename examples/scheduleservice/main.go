// Scheduleservice: run the scheduling service in-process and drive it with
// the typed HTTP client — the deployment shape where a datacenter
// controller asks a central scheduler for circuit schedules over the
// network.
//
//	go run ./examples/scheduleservice
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"reco/internal/api"
)

func main() {
	// Serve on an ephemeral loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: api.NewInstrumentedHandler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("serve: %v", err)
		}
	}()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	base := "http://" + ln.Addr().String()
	fmt.Printf("scheduling service at %s\n\n", base)
	client := api.NewClient(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := client.Healthz(ctx); err != nil {
		log.Fatal(err)
	}

	// Ask the service for a workload, then schedule it two ways.
	wl, err := client.GenerateWorkload(ctx, api.WorkloadRequest{
		N: 16, NumCoflows: 6, Seed: 42, MinDemand: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d coflows on a 16-port fabric\n", len(wl.Demands))

	single, err := client.ScheduleSingle(ctx, api.SingleRequest{Demand: wl.Demands[0], Delta: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coflow 0 via Reco-Sin: cct=%d reconfigs=%d lowerBound=%d (within 2x: %v)\n",
		single.CCT, single.Reconfigs, single.LowerBound, single.CCT <= 2*single.LowerBound)

	multi, err := client.ScheduleMulti(ctx, api.MultiRequest{Demands: wl.Demands, Delta: 100, C: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d coflows via Reco-Mul: reconfigs=%d, CCTs=%v\n",
		len(multi.CCTs), multi.Reconfigs, multi.CCTs)

	// The service self-reports request metrics.
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 2048)
	n, _ := resp.Body.Read(buf)
	fmt.Printf("\nservice metrics:\n%s", buf[:n])
}
