// Quickstart: schedule one coflow with Reco-Sin and inspect the result.
//
// The demand matrix is the running example of the paper's Fig. 2 on a 3×3
// switch with a 100-tick reconfiguration delay: regularization turns a
// 5-establishment BvN schedule (completion 815) into a 3-establishment one
// that completes in 618 ticks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"reco"
)

func main() {
	demand, err := reco.DemandFromRows([][]int64{
		{104, 109, 102},
		{103, 105, 107},
		{108, 101, 106},
	})
	if err != nil {
		log.Fatal(err)
	}

	const delta = 100 // reconfiguration delay in ticks (1 tick = 1 µs)
	res, err := reco.ScheduleSingle(demand, delta)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Reco-Sin on the Fig. 2 demand matrix")
	fmt.Printf("  circuit establishments: %d\n", len(res.Schedule))
	for i, a := range res.Schedule {
		fmt.Printf("    #%d ingress->egress %v for up to %d ticks\n", i+1, a.Perm, a.Dur)
	}
	fmt.Printf("  reconfigurations:  %d\n", res.Reconfigs)
	fmt.Printf("  completion time:   %d ticks\n", res.CCT)
	fmt.Printf("  lower bound:       %d ticks (CCT is within 2x, Theorem 2)\n", res.LowerBound)
}
