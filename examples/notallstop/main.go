// Notallstop: execute the same circuit schedule under the paper's two
// reconfiguration models (Sec. VI). In the all-stop model every
// reconfiguration halts the whole switch; in the not-all-stop model circuits
// carried over between establishments keep transmitting through the
// reconfiguration window, so schedules that reuse circuits finish earlier.
//
//	go run ./examples/notallstop
package main

import (
	"fmt"
	"log"

	"reco"
	"reco/internal/core"
	"reco/internal/ocs"
)

func main() {
	// Ingress 0 has a large demand to egress 0 that spans two circuit
	// establishments; the (0,0) circuit is carried over between them.
	demand, err := reco.DemandFromRows([][]int64{
		{1000, 0, 0},
		{0, 400, 400},
		{0, 400, 400},
	})
	if err != nil {
		log.Fatal(err)
	}
	cs := ocs.CircuitSchedule{
		{Perm: []int{0, 1, 2}, Dur: 500}, // (0,0) (1,1) (2,2)
		{Perm: []int{0, 2, 1}, Dur: 500}, // (0,0) carried over; (1,2) (2,1) new
	}

	const delta = 100
	all, err := ocs.ExecAllStop(demand, cs, delta)
	if err != nil {
		log.Fatal(err)
	}
	nas, err := ocs.ExecNotAllStop(demand, cs, delta)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hand-built schedule that carries circuit (0,0) across establishments")
	fmt.Printf("%-14s  %8s  %10s  %10s\n", "model", "CCT", "reconfigs", "conf time")
	fmt.Printf("%-14s  %8d  %10d  %10d\n", "all-stop", all.CCT, all.Reconfigs, all.ConfTime)
	fmt.Printf("%-14s  %8d  %10d  %10d\n", "not-all-stop", nas.CCT, nas.Reconfigs, nas.ConfTime)
	fmt.Printf("speedup: %.3fx\n\n", float64(all.CCT)/float64(nas.CCT))

	// The same comparison for a Reco-Sin schedule: feasibility and the
	// approximation guarantee carry over to the not-all-stop model
	// (Table III); whether it runs faster depends on how much circuit reuse
	// the decomposition happens to produce.
	shuffle, err := reco.DemandFromRows([][]int64{
		{900, 120, 0, 0},
		{0, 900, 130, 0},
		{0, 0, 900, 110},
		{140, 0, 0, 900},
	})
	if err != nil {
		log.Fatal(err)
	}
	rs, err := core.RecoSin(shuffle, delta)
	if err != nil {
		log.Fatal(err)
	}
	allR, err := ocs.ExecAllStop(shuffle, rs, delta)
	if err != nil {
		log.Fatal(err)
	}
	nasR, err := ocs.ExecNotAllStop(shuffle, rs, delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reco-Sin schedule (%d establishments) on a diagonal-heavy shuffle\n", len(rs))
	fmt.Printf("%-14s  %8s  %10s\n", "model", "CCT", "reconfigs")
	fmt.Printf("%-14s  %8d  %10d\n", "all-stop", allR.CCT, allR.Reconfigs)
	fmt.Printf("%-14s  %8d  %10d\n", "not-all-stop", nasR.CCT, nasR.Reconfigs)
	fmt.Println("\nA feasible all-stop schedule is never slower under not-all-stop, so")
	fmt.Println("Reco's approximation ratios carry over (Sec. VI, Table III).")
}
