package reco_test

import (
	"math/rand"
	"testing"

	"reco/internal/core"
	"reco/internal/lpiigb"
	"reco/internal/matrix"
	"reco/internal/ocs"
	"reco/internal/ordering"
	"reco/internal/packet"
	"reco/internal/schedule"
	"reco/internal/solstice"
	"reco/internal/sunflow"
	"reco/internal/tms"
	"reco/internal/workload"
)

// TestIntegrationAllSchedulersSatisfyModel runs every scheduler in the
// repository over one common workload and machine-checks the two model
// invariants on each output: the port constraint and demand satisfaction.
// This is the cross-module contract the whole evaluation rests on.
func TestIntegrationAllSchedulersSatisfyModel(t *testing.T) {
	const (
		n     = 20
		delta = 100
		c     = 4
	)
	coflows, err := workload.Generate(workload.GenConfig{
		N: n, NumCoflows: 14, Seed: 77, MinDemand: c * delta, MeanDemand: c * delta,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ds := make([]*matrix.Matrix, len(coflows))
	for i, cf := range coflows {
		ds[i] = cf.Demand
	}

	check := func(name string, flows schedule.FlowSchedule, ccts []int64) {
		t.Helper()
		if err := flows.Validate(n, len(ds)); err != nil {
			t.Errorf("%s: port constraint: %v", name, err)
		}
		if err := flows.CheckDemand(ds); err != nil {
			t.Errorf("%s: demand: %v", name, err)
		}
		for k, cct := range ccts {
			if cct <= 0 {
				t.Errorf("%s: coflow %d has CCT %d", name, k, cct)
			}
		}
	}

	// Reco-Mul pipeline.
	mul, err := core.ScheduleMul(ds, nil, delta, c)
	if err != nil {
		t.Fatalf("reco-mul: %v", err)
	}
	check("reco-mul", mul.Flows, mul.CCTs)

	// Per-coflow single schedulers executed sequentially.
	singles := map[string]func(*matrix.Matrix) (ocs.CircuitSchedule, error){
		"reco-sin": func(d *matrix.Matrix) (ocs.CircuitSchedule, error) { return core.RecoSin(d, delta) },
		"solstice": solstice.Schedule,
		"tms-bvn":  tms.ScheduleBvN,
		"helios":   func(d *matrix.Matrix) (ocs.CircuitSchedule, error) { return tms.ScheduleHelios(d, 4*delta) },
	}
	order := ordering.SEBF(ds)
	for name, schedFn := range singles {
		schedules := make([]ocs.CircuitSchedule, len(ds))
		for k, d := range ds {
			cs, err := schedFn(d)
			if err != nil {
				t.Fatalf("%s coflow %d: %v", name, k, err)
			}
			schedules[k] = cs
		}
		seq, err := ocs.ExecSequential(ds, schedules, order, delta)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		check(name, seq.Flows, seq.CCTs)
	}

	// LP-II-GB, both disciplines.
	lpSeq, err := lpiigb.ScheduleSequential(ds, nil, delta)
	if err != nil {
		t.Fatalf("lp-ii-gb: %v", err)
	}
	check("lp-ii-gb", lpSeq.Flows, lpSeq.CCTs)
	lpGroup, err := lpiigb.Schedule(ds, nil, delta)
	if err != nil {
		t.Fatalf("lp-ii-gb-group: %v", err)
	}
	check("lp-ii-gb-group", lpGroup.Flows, lpGroup.CCTs)

	// Sunflow per coflow (not-all-stop, no shared switch state between
	// coflows here: each is validated standalone).
	for k, d := range ds {
		res, err := sunflow.Schedule(d, delta)
		if err != nil {
			t.Fatalf("sunflow coflow %d: %v", k, err)
		}
		if err := res.Flows.Validate(n, 1); err != nil {
			t.Errorf("sunflow coflow %d: port constraint: %v", k, err)
		}
		if err := res.Flows.CheckDemand([]*matrix.Matrix{d}); err != nil {
			t.Errorf("sunflow coflow %d: demand: %v", k, err)
		}
	}
}

// TestIntegrationPacketVsOCSConsistency checks the relationship Reco-Mul is
// built on: its OCS schedule serves exactly the packet schedule's flows,
// with every flow at least as long in real time (reconfigurations only add
// delay) and each coflow's OCS completion within the Theorem 3 envelope of
// its packet completion when the minimum-demand assumption holds.
func TestIntegrationPacketVsOCSConsistency(t *testing.T) {
	const (
		n     = 16
		delta = 50
		c     = 9 // s = 3
	)
	coflows, err := workload.Generate(workload.GenConfig{
		N: n, NumCoflows: 10, Seed: 5, MinDemand: c * delta, MeanDemand: c * delta,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ds := make([]*matrix.Matrix, len(coflows))
	for i, cf := range coflows {
		ds[i] = cf.Demand
	}
	order, err := ordering.PrimalDual(ds, nil)
	if err != nil {
		t.Fatalf("PrimalDual: %v", err)
	}
	sp, err := packet.ListSchedule(ds, order)
	if err != nil {
		t.Fatalf("ListSchedule: %v", err)
	}
	mul, err := core.RecoMul(sp, n, delta, c)
	if err != nil {
		t.Fatalf("RecoMul: %v", err)
	}
	if len(mul.Flows) != len(sp) {
		t.Fatalf("flow count changed: %d -> %d", len(sp), len(mul.Flows))
	}
	// Per-flow: transmission time preserved.
	type key struct{ in, out, coflow int }
	packetTrans := map[key]int64{}
	for _, f := range sp {
		packetTrans[key{f.In, f.Out, f.Coflow}] += f.Duration()
	}
	ocsTrans := map[key]int64{}
	for _, f := range mul.Flows {
		ocsTrans[key{f.In, f.Out, f.Coflow}] += f.Transmitted()
	}
	for k, v := range packetTrans {
		if ocsTrans[k] != v {
			t.Errorf("pair %+v transmitted %d, want %d", k, ocsTrans[k], v)
		}
	}
	// Per-coflow Theorem 3 envelope.
	bound := core.ApproxRatioMul(1, c)
	pCCTs := sp.CCTs(len(ds))
	oCCTs := mul.Flows.CCTs(len(ds))
	for k := range ds {
		if pCCTs[k] == 0 {
			continue
		}
		if ratio := float64(oCCTs[k]) / float64(pCCTs[k]); ratio > bound+1e-9 {
			t.Errorf("coflow %d: OCS/packet CCT ratio %.3f exceeds Theorem 3 bound %.3f", k, ratio, bound)
		}
	}
}

// TestIntegrationNormalizationBaselineOrdering pins the headline result on a
// seeded workload: Reco-Mul's total CCT beats both baselines'.
func TestIntegrationNormalizationBaselineOrdering(t *testing.T) {
	const (
		n     = 24
		delta = 100
		c     = 4
	)
	coflows, err := workload.Generate(workload.GenConfig{
		N: n, NumCoflows: 18, Seed: 13, MinDemand: c * delta, MeanDemand: c * delta,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	ds := make([]*matrix.Matrix, len(coflows))
	for i, cf := range coflows {
		ds[i] = cf.Demand
	}
	mul, err := core.ScheduleMul(ds, nil, delta, c)
	if err != nil {
		t.Fatalf("reco-mul: %v", err)
	}
	lp, err := lpiigb.ScheduleSequential(ds, nil, delta)
	if err != nil {
		t.Fatalf("lp-ii-gb: %v", err)
	}
	schedules := make([]ocs.CircuitSchedule, len(ds))
	for k, d := range ds {
		if schedules[k], err = solstice.Schedule(d); err != nil {
			t.Fatalf("solstice coflow %d: %v", k, err)
		}
	}
	sebf, err := ocs.ExecSequential(ds, schedules, ordering.SEBF(ds), delta)
	if err != nil {
		t.Fatalf("sebf+solstice: %v", err)
	}
	sum := func(ccts []int64) (s int64) {
		for _, v := range ccts {
			s += v
		}
		return s
	}
	reco := sum(mul.CCTs)
	if lpSum := sum(lp.CCTs); lpSum < reco {
		t.Errorf("LP-II-GB total CCT %d beat Reco-Mul %d on the pinned workload", lpSum, reco)
	}
	if sebfSum := sum(sebf.CCTs); sebfSum < reco {
		t.Errorf("SEBF+Solstice total CCT %d beat Reco-Mul %d on the pinned workload", sebfSum, reco)
	}
}

// TestStressSweep hammers the full pipelines with thousands of random
// instances and machine-checks every invariant: demand satisfaction, the
// port constraint, and Theorem 2's factor-2 envelope. Skipped under -short.
func TestStressSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep runs thousands of instances")
	}
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 1500; trial++ {
		n := 2 + rng.Intn(12)
		delta := int64(1 + rng.Intn(300))
		m, _ := matrix.New(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < rng.Float64() { // varying densities
					m.Set(i, j, 1+rng.Int63n(5000))
				}
			}
		}
		if m.IsZero() {
			continue
		}
		for name, fn := range map[string]func() (ocs.CircuitSchedule, error){
			"reco-sin": func() (ocs.CircuitSchedule, error) { return core.RecoSin(m, delta) },
			"solstice": func() (ocs.CircuitSchedule, error) { return solstice.Schedule(m) },
		} {
			cs, err := fn()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			res, err := ocs.ExecAllStop(m, cs, delta)
			if err != nil {
				t.Fatalf("trial %d %s exec: %v", trial, name, err)
			}
			if err := res.Flows.CheckDemand([]*matrix.Matrix{m}); err != nil {
				t.Fatalf("trial %d %s demand: %v", trial, name, err)
			}
			if err := res.Flows.Validate(n, 1); err != nil {
				t.Fatalf("trial %d %s ports: %v", trial, name, err)
			}
			if name == "reco-sin" && res.CCT > 2*ocs.LowerBound(m, delta) {
				t.Fatalf("trial %d: Theorem 2 violated: %d > 2*%d", trial, res.CCT, ocs.LowerBound(m, delta))
			}
		}
	}
	for trial := 0; trial < 250; trial++ {
		n := 3 + rng.Intn(10)
		kk := 2 + rng.Intn(6)
		delta := int64(1 + rng.Intn(150))
		c := int64(1 + rng.Intn(9))
		var ds []*matrix.Matrix
		for k := 0; k < kk; k++ {
			m, _ := matrix.New(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if rng.Float64() < 0.4 {
						m.Set(i, j, 1+rng.Int63n(30*delta))
					}
				}
			}
			ds = append(ds, m)
		}
		mul, err := core.ScheduleMul(ds, nil, delta, c)
		if err != nil {
			t.Fatalf("mul trial %d: %v", trial, err)
		}
		if err := mul.Flows.Validate(n, kk); err != nil {
			t.Fatalf("mul trial %d ports: %v", trial, err)
		}
		if err := mul.Flows.CheckDemand(ds); err != nil {
			t.Fatalf("mul trial %d demand: %v", trial, err)
		}
		order, err := ordering.PrimalDual(ds, nil)
		if err != nil {
			t.Fatalf("mul trial %d order: %v", trial, err)
		}
		sp, err := packet.ListSchedule(ds, order)
		if err != nil {
			t.Fatalf("mul trial %d packet: %v", trial, err)
		}
		nas, err := core.RecoMulNAS(sp, n, delta, c)
		if err != nil {
			t.Fatalf("nas trial %d: %v", trial, err)
		}
		if err := nas.Flows.Validate(n, kk); err != nil {
			t.Fatalf("nas trial %d ports: %v", trial, err)
		}
		lp, err := lpiigb.ScheduleSequential(ds, nil, delta)
		if err != nil {
			t.Fatalf("lp trial %d: %v", trial, err)
		}
		if err := lp.Flows.CheckDemand(ds); err != nil {
			t.Fatalf("lp trial %d demand: %v", trial, err)
		}
	}
}
